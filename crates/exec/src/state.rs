//! Indexed sliding-window operator state.
//!
//! An operator state (the rectangles `S_A`, `S_B`, `S_AB`, … of Figure 1b)
//! holds the tuples that arrived on one input in the past and are still
//! alive under the window. The state supports the three steps of the
//! purge–probe–insert routine of window joins (Kang et al., reference \[16\]
//! in the paper) plus the operations the JIT machinery needs: draining
//! selected tuples into a blacklist and appending resumed tuples.
//!
//! # The index layer
//!
//! The paper's clique workloads are pure equi-joins, so probing a state with
//! a nested loop — the dominant CPU term at scale — is wasted work: only the
//! stored tuples whose join-attribute values equal the probing tuple's can
//! ever produce a result. Under [`StateIndexMode::Hashed`] (the default) a
//! state therefore maintains, *just in time*, one hash index per distinct
//! probe pattern it actually observes (a [`JoinKeySpec`]: the pairing of
//! stored-side and probe-side columns induced by the equi-join predicates
//! between the two schemas). [`OperatorState::probe`] then returns only the
//! candidate partners, in insertion order, making the probe
//! output-sensitive: O(candidates) expected instead of O(n).
//!
//! ## Index selection and the scan fallback
//!
//! The index to use is chosen by the *caller's* probe pattern, not fixed at
//! construction: the first probe with a new [`JoinKeySpec`] builds the index
//! for it by one scan of the live entries, and every later insertion
//! maintains all existing indexes incrementally. This is the "build exactly
//! the index the workload needs" discipline — an Eddy STeM probed by
//! composite tuples of varying shape simply accretes one small index per
//! shape it encounters. The state transparently falls back to a full scan
//! whenever hashing cannot answer the probe exactly:
//!
//! * the spec is empty (no equi-join predicate spans the two inputs, e.g. a
//!   cross product or a pure theta join),
//! * the probing tuple is missing one of the spec's probe-side columns
//!   (the spanning predicate is then *not applicable* and passes for every
//!   stored tuple, so no single bucket contains all matches), or
//! * the state runs under [`StateIndexMode::Scan`] (the baseline used by the
//!   equivalence suite and the probe-scaling bench).
//!
//! Stored tuples missing one of the spec's stored-side columns land in a
//! per-index *overflow* list that every probe scans in addition to its
//! bucket, so indexed and scanned probes examine exactly the same candidate
//! *matches* in exactly the same (insertion) order — result sets and their
//! ordering are byte-identical between the two modes.
//!
//! ## Ordered expiry
//!
//! `purge(now)` used to re-scan every stored tuple on every message. The
//! state now keeps a min-heap of `(expiry timestamp, seq)` so a purge pops
//! exactly the expired entries: O(expired) instead of O(n). Expiry is based
//! on the tuple's own timestamp (its lifespan is `[ts, ts + w)`), not on
//! when it was inserted — a resumed intermediate result inserted late still
//! expires at its original time, which is also why
//! [`OperatorState::restore`] preserves the original
//! [`StoredTuple::inserted_at`]: JIT's `Resume_Production` uses the
//! insertion time to avoid regenerating results that were already produced
//! before a suspension, and the heap keyed on `tuple.ts()` keeps purge
//! counts identical no matter how often a tuple is drained and restored.
//!
//! ## Accounting invariants
//!
//! The analytical byte accounting ([`OperatorState::size_bytes`]) counts
//! stored tuple payloads only — the index bookkeeping is deliberately *not*
//! charged, so indexed and scanned executions report identical memory and
//! the REF/JIT memory comparison of the figures is unaffected by the index
//! layer. Purge counts and drain/restore semantics are likewise identical in
//! both modes; only the number of candidates a probe examines (the
//! `probe_pairs` statistic and `CostKind::ProbePair` charge) shrinks.

use jit_types::{ColumnRef, FastMap, PredicateSet, SourceSet, Timestamp, Tuple, Value, Window};
use serde::{Content, Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;

/// One tuple stored in an operator state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The stored tuple.
    pub tuple: Tuple,
    /// When the tuple was inserted into this state (application time). Used
    /// by `Resume_Production` to avoid regenerating results that were
    /// already produced before a suspension.
    pub inserted_at: Timestamp,
}

/// How a state answers probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateIndexMode {
    /// Nested-loop scan over every stored tuple (the pre-index baseline;
    /// kept for equivalence testing and the probe-scaling bench).
    Scan,
    /// Hash-partitioned probing on the equi-join key, with a scan fallback
    /// when no hashable key spans the two inputs (the default).
    #[default]
    Hashed,
}

/// The equi-join key pairing between a state's stored tuples and the tuples
/// probing it: one `(stored column, probe column)` pair per equi-join
/// predicate spanning the two schemas.
///
/// Two tuples satisfy *all* spanning predicates with both sides present iff
/// their value vectors on the paired columns are equal — which is what makes
/// one hash lookup equivalent to the full conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinKeySpec {
    /// `(stored-side column, probe-side column)` pairs, sorted and deduped.
    pairs: Vec<(ColumnRef, ColumnRef)>,
}

impl JoinKeySpec {
    /// Derive the key spec for probing a state holding tuples covering
    /// `stored` with tuples covering `probe`, under the given predicates.
    ///
    /// Only predicates spanning the two (disjoint) schemas contribute; an
    /// empty spec means no equi-join key exists and probes fall back to a
    /// scan.
    pub fn between(predicates: &PredicateSet, stored: SourceSet, probe: SourceSet) -> Self {
        let mut pairs = Vec::new();
        for p in predicates.predicates() {
            if stored.contains(p.left.source) && probe.contains(p.right.source) {
                pairs.push((p.left, p.right));
            }
            if stored.contains(p.right.source) && probe.contains(p.left.source) {
                pairs.push((p.right, p.left));
            }
        }
        pairs.sort();
        pairs.dedup();
        JoinKeySpec { pairs }
    }

    /// Is the spec empty (no equi-join predicate spans the two inputs)?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of column pairs in the key.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The key a *stored* tuple files under, or `None` if the tuple is
    /// missing one of the stored-side columns (it then goes to the index's
    /// overflow list).
    pub fn stored_key(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.pairs.len());
        self.stored_key_into(tuple, &mut key).then_some(key)
    }

    /// Allocation-free variant of [`JoinKeySpec::stored_key`]: fill `buf`
    /// with the stored-side key and return `true`, or return `false` (with
    /// `buf` cleared) when the tuple is missing a stored-side column.
    pub fn stored_key_into(&self, tuple: &Tuple, buf: &mut Vec<Value>) -> bool {
        buf.clear();
        for (stored_col, _) in &self.pairs {
            match tuple.value(*stored_col) {
                Some(v) => buf.push(v.clone()),
                None => {
                    buf.clear();
                    return false;
                }
            }
        }
        true
    }

    /// The key a *probing* tuple looks up, or `None` if the tuple is missing
    /// one of the probe-side columns (the probe then falls back to a scan).
    pub fn probe_key(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.pairs.len());
        self.probe_key_into(tuple, &mut key).then_some(key)
    }

    /// Allocation-free variant of [`JoinKeySpec::probe_key`]: fill `buf`
    /// with the probe-side key and return `true`, or return `false` (with
    /// `buf` cleared) when the tuple is missing a probe-side column.
    pub fn probe_key_into(&self, tuple: &Tuple, buf: &mut Vec<Value>) -> bool {
        buf.clear();
        for (_, probe_col) in &self.pairs {
            match tuple.value(*probe_col) {
                Some(v) => buf.push(v.clone()),
                None => {
                    buf.clear();
                    return false;
                }
            }
        }
        true
    }

    /// The probe-side column references, in pair order — what the batch
    /// kernel extracts key vectors from.
    pub fn probe_columns(&self) -> impl Iterator<Item = ColumnRef> + '_ {
        self.pairs.iter().map(|&(_, probe_col)| probe_col)
    }
}

/// Timestamp-sorted expiry queue exploiting the near-sorted insert order of
/// window states: arrivals enter in nondecreasing timestamp order, so the
/// common push is an O(1) tail append and the common pop an O(1) head
/// advance over contiguous memory — where a binary heap paid a cache-hostile
/// sift per operation. Out-of-order pushes (restores of drained entries with
/// their original timestamps) binary-search their slot; the memmove is rare
/// in practice.
#[derive(Debug, Clone, Default)]
struct ExpiryQueue {
    /// `(timestamp, handle)`, ascending by timestamp from the front.
    entries: VecDeque<(Timestamp, u64)>,
}

impl ExpiryQueue {
    fn push(&mut self, ts: Timestamp, seq: u64) {
        match self.entries.back() {
            Some(&(last, _)) if ts < last => {
                let idx = self.entries.partition_point(|&(t, _)| t <= ts);
                self.entries.insert(idx, (ts, seq));
            }
            _ => self.entries.push_back((ts, seq)),
        }
    }

    fn peek(&self) -> Option<(Timestamp, u64)> {
        self.entries.front().copied()
    }

    fn pop(&mut self) -> Option<(Timestamp, u64)> {
        self.entries.pop_front()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Bucket storage for a [`HashIndex`], specialized by key shape.
///
/// The dominant equi-join key in practice is a single `Int` column; for it
/// the generic `Vec<Value>` keying costs real per-probe time — every hash
/// walks a heap-allocated enum slice and every hit compares through a
/// pointer chase, and every new key allocates an owned `Vec`. The `Int`
/// variant keys the map with the inline `i64` instead. An index starts in
/// `Int` mode and migrates (once, rehashing existing entries) to `Generic`
/// the first time a key arrives that is not a single integer.
#[derive(Debug, Clone)]
pub(crate) enum Buckets {
    /// Single-column integer keys, stored inline.
    Int(FastMap<i64, Vec<u64>>),
    /// Composite or non-integer keys.
    Generic(FastMap<Vec<Value>, Vec<u64>>),
}

impl Default for Buckets {
    fn default() -> Self {
        Buckets::Int(FastMap::default())
    }
}

impl Buckets {
    /// The bucket filed under `key`, if any. A non-`Int` probe key against
    /// an `Int`-mode map correctly finds nothing (only single-integer keys
    /// have ever been filed in it).
    fn get(&self, key: &[Value]) -> Option<&Vec<u64>> {
        match self {
            Buckets::Int(map) => match key {
                [Value::Int(v)] => map.get(v),
                _ => None,
            },
            Buckets::Generic(map) => map.get(key),
        }
    }

    /// Mutable variant of [`Buckets::get`].
    fn get_mut(&mut self, key: &[Value]) -> Option<&mut Vec<u64>> {
        match self {
            Buckets::Int(map) => match key {
                [Value::Int(v)] => map.get_mut(v),
                _ => None,
            },
            Buckets::Generic(map) => map.get_mut(key),
        }
    }

    /// Append `handle` to the bucket for `key`, migrating `Int → Generic`
    /// if the key does not fit the specialized shape.
    fn push(&mut self, key: &[Value], handle: u64) {
        loop {
            match self {
                Buckets::Int(map) => {
                    if let [Value::Int(v)] = key {
                        map.entry(*v).or_default().push(handle);
                        return;
                    }
                    let migrated: FastMap<Vec<Value>, Vec<u64>> = map
                        .drain()
                        .map(|(k, bucket)| (vec![Value::Int(k)], bucket))
                        .collect();
                    *self = Buckets::Generic(migrated);
                }
                Buckets::Generic(map) => {
                    // `Vec<Value>: Borrow<[Value]>` lets the lookup run on
                    // the borrowed slice; an owned key is allocated only
                    // when the bucket sees the key for the first time.
                    match map.get_mut(key) {
                        Some(bucket) => bucket.push(handle),
                        None => {
                            map.insert(key.to_vec(), vec![handle]);
                        }
                    }
                    return;
                }
            }
        }
    }

    fn clear(&mut self) {
        match self {
            Buckets::Int(map) => map.clear(),
            Buckets::Generic(map) => map.clear(),
        }
    }
}

/// One hash index over a tuple collection, for one [`JoinKeySpec`] — the
/// bucket/overflow machinery shared by [`OperatorState`] (lazily built,
/// incrementally maintained) and the static join (built once over an
/// immutable relation).
#[derive(Debug, Clone, Default)]
pub(crate) struct HashIndex {
    /// Key → handles of stored tuples carrying that key, ascending (i.e.
    /// in insertion order). Keyed with the fast multiplicative hasher:
    /// buckets are probed once per arrival. Handles of removed tuples are
    /// reclaimed lazily (the reader filters through `get`); compaction
    /// rebuilds the index wholesale, which bounds the stale fraction.
    buckets: Buckets,
    /// Handles of stored tuples missing a stored-side key column; always
    /// scanned in addition to the bucket. Ascending.
    overflow: Vec<u64>,
}

impl HashIndex {
    /// File `handle` under the tuple's stored-side key, or in the overflow
    /// list when the tuple is missing a key column.
    pub(crate) fn file(&mut self, spec: &JoinKeySpec, tuple: &Tuple, handle: u64) {
        let mut scratch = Vec::with_capacity(spec.len());
        self.file_with(spec, tuple, handle, &mut scratch);
    }

    /// Like [`HashIndex::file`], but the key is formed in a caller-owned
    /// scratch buffer.
    pub(crate) fn file_with(
        &mut self,
        spec: &JoinKeySpec,
        tuple: &Tuple,
        handle: u64,
        scratch: &mut Vec<Value>,
    ) {
        if spec.stored_key_into(tuple, scratch) {
            self.buckets.push(scratch, handle);
        } else {
            self.overflow.push(handle);
        }
    }

    /// The candidates for one probe key: the key's bucket merged with the
    /// overflow list, ascending. May include handles of since-removed
    /// tuples; the caller's `get` filters them.
    pub(crate) fn candidates(&self, key: &[Value]) -> Vec<u64> {
        let bucket = self.buckets.get(key).map(Vec::as_slice).unwrap_or_default();
        if self.overflow.is_empty() {
            return bucket.to_vec();
        }
        merge_ascending(bucket, &self.overflow)
    }

    /// Drop every filed handle.
    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
        self.overflow.clear();
    }
}

/// A window-bounded collection of tuples with running byte accounting,
/// hash-partitioned probing and timestamp-ordered expiry.
///
/// Storage is a slab: entry `seq` lives at `slots[seq - base]`, so handle
/// lookup is an array index, slots of removed entries become tombstones
/// skipped on iteration, and compaction (once tombstones outnumber live
/// entries) rebases `base` past every seq ever issued and rebuilds the heap
/// and indexes — amortised O(1) per removal, and no handle is ever reused.
#[derive(Debug, Clone, Default)]
pub struct OperatorState {
    name: String,
    mode: StateIndexMode,
    /// Live entries (and tombstones) in insertion order; the entry with
    /// handle `seq` is at index `seq - base`. A deque so that purges —
    /// which remove the oldest timestamps, i.e. (almost always) the front —
    /// shrink the slab in O(1) instead of leaving tombstones that force
    /// periodic compaction. Mid-slab removals (drains) still tombstone.
    slots: VecDeque<Option<StoredTuple>>,
    /// Handle of the front slot. Seqs below `base` are dead (purged off the
    /// front or compacted away).
    base: u64,
    /// Number of `Some` slots.
    live_count: usize,
    /// Timestamp-sorted queue of `(tuple timestamp, seq)`: the next entry
    /// to expire is at the front. Stale seqs are skipped when popped.
    expiry: ExpiryQueue,
    /// The indexes built so far, one per probe pattern observed. A state
    /// sees one or two distinct probe patterns in practice, so a
    /// linear-scanned vector beats hashing the spec on every probe.
    indexes: Vec<(JoinKeySpec, HashIndex)>,
    bytes: usize,
    /// Reusable key buffer for the insert/probe hot path — key values are
    /// formed here and only cloned into an owned `Vec` when a bucket sees a
    /// key for the first time.
    key_scratch: Vec<Value>,
    /// Content-mutation counter: bumped by every insertion, removal,
    /// compaction (which rebases probe handles) and restore. Probes do not
    /// bump it (lazy index construction does not change the stored
    /// contents). Lets callers cache probe outcomes — equal generation
    /// guarantees identical contents *and* stable handles.
    generation: u64,
}

impl OperatorState {
    /// An empty state with a diagnostic name (e.g. `"S_AB"`), probing via
    /// hash indexes (the default).
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_index_mode(name, StateIndexMode::default())
    }

    /// An empty state with an explicit index mode.
    pub fn with_index_mode(name: impl Into<String>, mode: StateIndexMode) -> Self {
        OperatorState {
            name: name.into(),
            mode,
            ..OperatorState::default()
        }
    }

    /// Switch the probing mode. Existing indexes are dropped (and rebuilt
    /// lazily on the next probe if switching back to
    /// [`StateIndexMode::Hashed`]).
    pub fn set_index_mode(&mut self, mode: StateIndexMode) {
        self.mode = mode;
        self.indexes.clear();
    }

    /// The probing mode in effect.
    pub fn index_mode(&self) -> StateIndexMode {
        self.mode
    }

    /// The state's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Running analytical size in bytes (stored tuple payloads only; index
    /// bookkeeping is not charged, see the module docs).
    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct probe patterns indexed so far.
    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }

    /// Iterate over stored entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.slots.iter().filter_map(|slot| slot.as_ref())
    }

    /// The stored entry with the given probe handle, if still live.
    pub fn get(&self, seq: u64) -> Option<&StoredTuple> {
        let idx = seq.checked_sub(self.base)? as usize;
        self.slots.get(idx)?.as_ref()
    }

    /// Insert a tuple at time `now`.
    pub fn insert(&mut self, tuple: Tuple, now: Timestamp) {
        self.admit(StoredTuple {
            tuple,
            inserted_at: now,
        });
    }

    /// Re-insert a previously drained entry, preserving its original
    /// insertion time (used by `Resume_Production`: the insertion time
    /// encodes which partners the tuple was already joined with).
    pub fn restore(&mut self, entry: StoredTuple) {
        self.admit(entry);
    }

    fn admit(&mut self, entry: StoredTuple) {
        self.generation += 1;
        let seq = self.base + self.slots.len() as u64;
        self.bytes += entry.tuple.size_bytes();
        self.expiry.push(entry.tuple.ts(), seq);
        let mut scratch = std::mem::take(&mut self.key_scratch);
        for (spec, index) in self.indexes.iter_mut() {
            index.file_with(spec, &entry.tuple, seq, &mut scratch);
        }
        self.key_scratch = scratch;
        self.slots.push_back(Some(entry));
        self.live_count += 1;
    }

    /// Remove and return the entry with handle `seq`, leaving a tombstone.
    fn take(&mut self, seq: u64) -> Option<StoredTuple> {
        let idx = seq.checked_sub(self.base)? as usize;
        let entry = self.slots.get_mut(idx)?.take()?;
        self.generation += 1;
        self.bytes -= entry.tuple.size_bytes();
        self.live_count -= 1;
        Some(entry)
    }

    /// Drop leading tombstones, advancing `base` past them — the O(1)
    /// reclamation path for purges (which remove the oldest timestamps,
    /// i.e. the front of the insertion-ordered slab).
    fn trim_front(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Remove every tuple that has expired by `now` under `window`; returns
    /// how many were removed.
    ///
    /// O(expired): the expiry heap is popped only while its minimum has
    /// expired. Expiry is based on the tuple's own timestamp (its lifespan
    /// is `[ts, ts + w)`), not on when it was inserted — a resumed
    /// intermediate result inserted late still expires at its original time.
    pub fn purge(&mut self, window: Window, now: Timestamp) -> usize {
        let mut removed = 0usize;
        while let Some((ts, seq)) = self.expiry.peek() {
            if let Some(entry) = self.get(seq) {
                if !window.is_expired(entry.tuple.ts(), now) {
                    break;
                }
                debug_assert_eq!(ts, entry.tuple.ts());
                // INVARIANT: get(seq) returned Some above, so the slot is live.
                self.take(seq).expect("checked live");
                removed += 1;
            }
            // Stale queue entries (drained tuples) are skipped silently.
            self.expiry.pop();
        }
        self.trim_front();
        self.maybe_compact();
        removed
    }

    /// Remove and return every entry for which `pred` holds, in insertion
    /// order (used by `Suspend_Production` to move super-tuples of an MNS
    /// into a blacklist). Index and heap references to the drained entries
    /// are reclaimed lazily.
    pub fn drain_where(&mut self, mut pred: impl FnMut(&StoredTuple) -> bool) -> Vec<StoredTuple> {
        let mut drained = Vec::new();
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(&mut pred) {
                // INVARIANT: is_some_and held, so the slot is occupied.
                let entry = slot.take().expect("checked some");
                self.bytes -= entry.tuple.size_bytes();
                self.live_count -= 1;
                drained.push(entry);
            }
        }
        if !drained.is_empty() {
            self.generation += 1;
        }
        self.maybe_compact();
        drained
    }

    /// Remove everything (indexes included; they rebuild lazily).
    pub fn clear(&mut self) {
        self.generation += 1;
        // Rebase past every handle ever issued so stale handles stay dead.
        self.base += self.slots.len() as u64;
        self.slots.clear();
        self.live_count = 0;
        self.expiry.clear();
        self.indexes.clear();
        self.bytes = 0;
    }

    /// Serialise the resumable content of the state: the live entries in
    /// insertion order (tuples plus their original `inserted_at`), tagged
    /// with the state's name for validation on restore.
    ///
    /// The expiry heap and the hash indexes are deliberately *not*
    /// serialised: both are pure functions of the entries
    /// ([`OperatorState::restore_checkpoint`] rebuilds the heap eagerly and
    /// the indexes lazily on the next probe), so a restored state purges and
    /// probes exactly like the original.
    pub fn checkpoint(&self) -> Content {
        Content::Map(vec![
            ("name".to_string(), Content::Str(self.name.clone())),
            (
                "entries".to_string(),
                Content::Seq(self.iter().map(Serialize::to_content).collect()),
            ),
        ])
    }

    /// Rebuild the state from a [`OperatorState::checkpoint`] blob. The
    /// state must have been constructed with the same name (plan geometry is
    /// reconstructed from the query, not the checkpoint); existing entries
    /// are discarded.
    pub fn restore_checkpoint(&mut self, content: &Content) -> Result<(), serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "OperatorState"))?;
        let name: String = serde::field(map, "name", "OperatorState")?;
        if name != self.name {
            return Err(serde::Error::msg(format!(
                "operator state mismatch: checkpoint holds `{name}`, plan expects `{}`",
                self.name
            )));
        }
        let entries: Vec<StoredTuple> = serde::field(map, "entries", "OperatorState")?;
        self.clear();
        for entry in entries {
            self.restore(entry);
        }
        Ok(())
    }

    /// Probe the state: the handles (pass to [`OperatorState::get`]) of the
    /// candidate partners for `probe`, in insertion order.
    ///
    /// Under [`StateIndexMode::Hashed`] with a non-empty `spec` and a fully
    /// valued probing tuple this returns only the stored tuples whose key
    /// equals the probe key (plus the overflow entries whose key could not
    /// be formed); otherwise it returns every live entry — the scan
    /// fallback. Candidates still need the caller's window check and full
    /// predicate evaluation: the index narrows the candidate set, it never
    /// decides a match by itself.
    pub fn probe(&mut self, spec: &JoinKeySpec, probe: &Tuple) -> Vec<u64> {
        let mut out = Vec::new();
        self.probe_into(spec, probe, &mut out);
        out
    }

    /// Allocation-free variant of [`OperatorState::probe`]: the candidates
    /// are written into the caller-owned `out` (cleared first), and the
    /// probe key is formed in the state's scratch buffer instead of a fresh
    /// `Vec<Value>` per probe — the tuple-mode hot-path fix.
    pub fn probe_into(&mut self, spec: &JoinKeySpec, probe: &Tuple, out: &mut Vec<u64>) {
        out.clear();
        if self.mode == StateIndexMode::Scan || spec.is_empty() {
            self.all_live_into(out);
            return;
        }
        let mut scratch = std::mem::take(&mut self.key_scratch);
        if spec.probe_key_into(probe, &mut scratch) {
            self.probe_key_slice_into(spec, &scratch, out);
        } else {
            self.all_live_into(out);
        }
        self.key_scratch = scratch;
    }

    /// Batch-kernel probe: look up a pre-extracted key slice (one hash pass
    /// per batch computed the keys; see `jit_exec::operator::BatchPrep`).
    /// `None` means the probing side is missing a key column — the scan
    /// fallback, exactly as in [`OperatorState::probe`].
    pub fn probe_slice_into(
        &mut self,
        spec: &JoinKeySpec,
        key: Option<&[Value]>,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        if self.mode == StateIndexMode::Scan || spec.is_empty() {
            self.all_live_into(out);
            return;
        }
        match key {
            None => self.all_live_into(out),
            Some(key) => self.probe_key_slice_into(spec, key, out),
        }
    }

    /// Shared tail of the hashed probe paths: bucket/overflow merge,
    /// written into `out`.
    ///
    /// Index buckets hold handles of since-removed tuples until compaction
    /// rebuilds them (which bounds the stale fraction at ~50%); the probe
    /// filters them out read-only here instead of rewriting the bucket on
    /// every lookup, so the hot path stays alloc- and write-free.
    fn probe_key_slice_into(&mut self, spec: &JoinKeySpec, key: &[Value], out: &mut Vec<u64>) {
        self.ensure_index(spec);
        let slots = &self.slots;
        let base = self.base;
        let is_live = |seq: u64| {
            seq.checked_sub(base)
                .and_then(|idx| slots.get(idx as usize))
                .is_some_and(|slot| slot.is_some())
        };
        let index = self
            .indexes
            .iter_mut()
            .find_map(|(s, index)| (s == spec).then_some(index))
            // INVARIANT: ensure_index(spec) above inserted this spec's index.
            .expect("just ensured");
        let Some(bucket) = index.buckets.get_mut(key) else {
            index.overflow.retain(|&s| is_live(s));
            out.extend_from_slice(&index.overflow);
            return;
        };
        if index.overflow.is_empty() {
            out.extend(bucket.iter().copied().filter(|&s| is_live(s)));
            // Amortized reclamation: the filter above is read-only, so a
            // bucket is rewritten only once dead handles clearly dominate
            // it — every bucket stays O(live handles) without a write on
            // each probe.
            if bucket.len() > 2 * out.len() + 8 {
                bucket.retain(|&s| is_live(s));
            }
        } else {
            bucket.retain(|&s| is_live(s));
            index.overflow.retain(|&s| is_live(s));
            merge_ascending_into(bucket, &index.overflow, out);
        }
    }

    /// The timestamp of the next entry the expiry heap would consider, if
    /// any — a *lower bound* on the earliest live tuple timestamp (stale
    /// heap entries for drained tuples may report an earlier time). Used by
    /// the batch kernels to elide provably empty purges: if even this bound
    /// has not expired by a batch's max timestamp, no purge in the batch
    /// can remove anything, and skipping it is counter-neutral
    /// (`purged_tuples` and `CostKind::StatePurge` are charged per removed
    /// tuple, not per purge call).
    pub fn next_expiry(&self) -> Option<Timestamp> {
        self.expiry.peek().map(|(ts, _)| ts)
    }

    /// The state's content-mutation counter (see the field docs): while two
    /// observations return the same generation, the stored contents are
    /// identical and every probe handle remains valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append all live handles in insertion order to `out` (the scan path).
    fn all_live_into(&self, out: &mut Vec<u64>) {
        out.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.is_some())
                .map(|(idx, _)| self.base + idx as u64),
        );
    }

    /// Build the index for `spec` if this is the first probe using it.
    fn ensure_index(&mut self, spec: &JoinKeySpec) {
        if self.indexes.iter().any(|(s, _)| s == spec) {
            return;
        }
        let mut index = HashIndex::default();
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(entry) = slot {
                index.file(spec, &entry.tuple, self.base + idx as u64);
            }
        }
        self.indexes.push((spec.clone(), index));
    }

    /// Reclaim tombstones once they outnumber the live entries: rebase
    /// `base` past every handle ever issued, drop the tombstones, and
    /// rebuild the heap and indexes over the fresh handles — amortised O(1)
    /// per removal.
    fn maybe_compact(&mut self) {
        if self.slots.len() <= 64 || self.slots.len() <= 2 * self.live_count {
            return;
        }
        self.generation += 1;
        self.base += self.slots.len() as u64;
        let entries: Vec<StoredTuple> = self.slots.drain(..).flatten().collect();
        let mut pairs: Vec<(Timestamp, u64)> = entries
            .iter()
            .enumerate()
            .map(|(idx, entry)| (entry.tuple.ts(), self.base + idx as u64))
            .collect();
        // Slab order is only near-sorted when restores interleaved; the
        // queue's invariant is full timestamp order.
        pairs.sort_unstable();
        self.expiry = ExpiryQueue {
            entries: pairs.into(),
        };
        for (spec, index) in self.indexes.iter_mut() {
            index.clear();
            for (idx, entry) in entries.iter().enumerate() {
                index.file(spec, &entry.tuple, self.base + idx as u64);
            }
        }
        self.slots = entries.into_iter().map(Some).collect();
        debug_assert_eq!(self.slots.len(), self.live_count);
    }
}

/// Merge two ascending handle lists into one ascending list.
pub(crate) fn merge_ascending<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_ascending_into(a, b, &mut out);
    out
}

/// Merge two ascending handle lists into a caller-owned output vector.
pub(crate) fn merge_ascending_into<T: Copy + Ord>(a: &[T], b: &[T], out: &mut Vec<T>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

impl fmt::Display for OperatorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples, {} B]", self.name, self.len(), self.bytes)
    }
}

/// A shared handle to an [`OperatorState`], as vended by [`StateCache`].
///
/// `Rc<RefCell<…>>` rather than `Arc<Mutex<…>>` on purpose: sharing happens
/// inside one serving thread (the multi-query registry routes every arrival
/// itself), so the cache stays off the sharded runtime's hot path and pays
/// no synchronization cost.
pub type SharedState = Rc<RefCell<OperatorState>>;

/// A refcounted cache of [`OperatorState`]s shared across consumers.
///
/// This is the substrate of cross-query state sharing in the serving tier:
/// two queries whose plans contain the *same* window state (same source,
/// same window, same pre-join filtering — the key `K` encodes whatever
/// "same" means to the caller) hold one [`SharedState`] instead of two
/// copies. [`StateCache::acquire`] hands out the existing handle (bumping a
/// refcount) or materializes the state on first demand;
/// [`StateCache::release`] drops the entry once the last consumer leaves, so
/// a deregistered query's state is reclaimed exactly when nobody else needs
/// it.
///
/// [`StateCache::shared_bytes`] reports the bytes of every cached state
/// *once*, while [`StateCache::isolated_bytes`] reports what the same
/// consumers would hold without sharing (each state multiplied by its
/// refcount) — the pair the multi-query bench compares.
#[derive(Debug, Default)]
pub struct StateCache<K> {
    entries: FastMap<K, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    state: SharedState,
    refcount: usize,
}

impl<K: Hash + Eq + Clone> StateCache<K> {
    /// An empty cache.
    pub fn new() -> Self {
        StateCache {
            entries: FastMap::default(),
        }
    }

    /// Acquire the shared state under `key`, creating it with `make` if this
    /// is the first acquisition. Every `acquire` must be paired with one
    /// [`StateCache::release`].
    pub fn acquire(&mut self, key: K, make: impl FnOnce() -> OperatorState) -> SharedState {
        let entry = self.entries.entry(key).or_insert_with(|| CacheEntry {
            state: Rc::new(RefCell::new(make())),
            refcount: 0,
        });
        entry.refcount += 1;
        Rc::clone(&entry.state)
    }

    /// Release one reference to the state under `key`; the entry is dropped
    /// when its refcount reaches zero. Returns `true` if the entry was
    /// removed. Releasing an unknown key is a no-op returning `false`.
    pub fn release(&mut self, key: &K) -> bool {
        let Some(entry) = self.entries.get_mut(key) else {
            return false;
        };
        entry.refcount -= 1;
        if entry.refcount == 0 {
            self.entries.remove(key);
            true
        } else {
            false
        }
    }

    /// The shared handle under `key` without bumping the refcount, if cached.
    pub fn peek(&self, key: &K) -> Option<SharedState> {
        self.entries.get(key).map(|e| Rc::clone(&e.state))
    }

    /// Current number of consumers of the state under `key` (0 if absent).
    pub fn refcount(&self, key: &K) -> usize {
        self.entries.get(key).map_or(0, |e| e.refcount)
    }

    /// Number of distinct cached states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total analytical bytes of the cached states, each counted once —
    /// what the serving tier actually holds.
    pub fn shared_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.state.borrow().size_bytes())
            .sum()
    }

    /// Analytical bytes the same consumers would hold *without* sharing:
    /// each state's bytes multiplied by its refcount.
    pub fn isolated_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.refcount * e.state.borrow().size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Value};
    use std::sync::Arc;

    fn tuple(seq: u64, ts_ms: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(seq as i64)],
        )))
    }

    fn keyed(source: u16, seq: u64, ts_ms: u64, key: i64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(key)],
        )))
    }

    /// A.x0 = B.x0: state stores B (source 1), probes come from A (source 0).
    fn ab_spec() -> JoinKeySpec {
        JoinKeySpec::between(
            &PredicateSet::clique(2),
            SourceSet::single(SourceId(1)),
            SourceSet::single(SourceId(0)),
        )
    }

    #[test]
    fn insert_updates_len_and_bytes() {
        let mut s = OperatorState::new("S_A");
        assert!(s.is_empty());
        let t = tuple(1, 100);
        let sz = t.size_bytes();
        s.insert(t, Timestamp::from_millis(100));
        assert_eq!(s.len(), 1);
        assert_eq!(s.size_bytes(), sz);
        assert_eq!(s.name(), "S_A");
        assert!(s.to_string().contains("S_A"));
        assert_eq!(s.index_mode(), StateIndexMode::Hashed);
    }

    #[test]
    fn purge_removes_expired_only() {
        let w = Window::new(Duration::from_secs(10));
        let mut s = OperatorState::new("S");
        s.insert(tuple(1, 0), Timestamp::ZERO);
        s.insert(tuple(2, 5_000), Timestamp::from_millis(5_000));
        s.insert(tuple(3, 9_000), Timestamp::from_millis(9_000));
        // At t = 12s the first tuple (alive [0,10s)) has expired.
        let removed = s.purge(w, Timestamp::from_millis(12_000));
        assert_eq!(removed, 1);
        assert_eq!(s.len(), 2);
        // Bytes shrink consistently.
        let expected: usize = s.iter().map(|e| e.tuple.size_bytes()).sum();
        assert_eq!(s.size_bytes(), expected);
        // Nothing more to purge at the same instant.
        assert_eq!(s.purge(w, Timestamp::from_millis(12_000)), 0);
    }

    #[test]
    fn purge_uses_tuple_timestamp_not_insertion_time() {
        let w = Window::new(Duration::from_secs(10));
        let mut s = OperatorState::new("S");
        // Inserted late (resumed), but carries an old timestamp.
        s.insert(tuple(1, 0), Timestamp::from_millis(9_999));
        assert_eq!(s.purge(w, Timestamp::from_millis(10_000)), 1);
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn purge_is_exact_when_restores_interleave() {
        // A restored old tuple sits *behind* younger ones in insertion
        // order but must still expire first (heap order, not scan order).
        let w = Window::new(Duration::from_secs(10));
        let mut s = OperatorState::new("S");
        s.insert(tuple(1, 8_000), Timestamp::from_millis(8_000));
        s.restore(StoredTuple {
            tuple: tuple(2, 1_000),
            inserted_at: Timestamp::from_millis(1_000),
        });
        assert_eq!(s.purge(w, Timestamp::from_millis(11_500)), 1);
        let left: Vec<u64> = s.iter().map(|e| e.tuple.parts()[0].seq).collect();
        assert_eq!(left, vec![1]);
    }

    #[test]
    fn drain_where_moves_matching_entries() {
        let mut s = OperatorState::new("S");
        for i in 0..6 {
            s.insert(tuple(i, i * 100), Timestamp::from_millis(i * 100));
        }
        let drained = s.drain_where(|e| e.tuple.parts()[0].seq % 2 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(s.len(), 3);
        let expected: usize = s.iter().map(|e| e.tuple.size_bytes()).sum();
        assert_eq!(s.size_bytes(), expected);
        // Restoring brings them back with their original insertion time.
        let original_time = drained[0].inserted_at;
        for d in drained {
            s.restore(d);
        }
        assert_eq!(s.len(), 6);
        assert!(s.iter().any(|e| e.inserted_at == original_time));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = OperatorState::new("S");
        s.insert(tuple(1, 0), Timestamp::ZERO);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
    }

    #[test]
    fn entries_preserve_insertion_order() {
        let mut s = OperatorState::new("S");
        for i in 0..5 {
            s.insert(tuple(i, i), Timestamp::from_millis(i));
        }
        let seqs: Vec<u64> = s.iter().map(|e| e.tuple.parts()[0].seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn spec_between_orients_pairs() {
        let spec = ab_spec();
        assert_eq!(spec.len(), 1);
        assert!(!spec.is_empty());
        // No predicate spans A with A.
        let none = JoinKeySpec::between(
            &PredicateSet::clique(2),
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(0)),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn hashed_probe_returns_only_key_matches_in_insertion_order() {
        let mut s = OperatorState::new("S_B");
        let spec = ab_spec();
        for (i, key) in [7, 8, 7, 9, 7].iter().enumerate() {
            s.insert(
                keyed(1, i as u64, i as u64 * 10, *key),
                Timestamp::from_millis(i as u64 * 10),
            );
        }
        let probe = keyed(0, 0, 100, 7);
        let hits = s.probe(&spec, &probe);
        let seqs: Vec<u64> = hits
            .iter()
            .map(|&h| s.get(h).unwrap().tuple.parts()[0].seq)
            .collect();
        assert_eq!(seqs, vec![0, 2, 4]);
        assert_eq!(s.num_indexes(), 1);
        // A key with no partners returns nothing.
        assert!(s.probe(&spec, &keyed(0, 1, 100, 42)).is_empty());
    }

    #[test]
    fn scan_mode_and_empty_spec_return_everything() {
        let mut s = OperatorState::with_index_mode("S", StateIndexMode::Scan);
        for i in 0..4 {
            s.insert(
                keyed(1, i, i * 10, i as i64),
                Timestamp::from_millis(i * 10),
            );
        }
        assert_eq!(s.probe(&ab_spec(), &keyed(0, 0, 50, 2)).len(), 4);
        assert_eq!(s.num_indexes(), 0);
        // Hashed mode with an empty spec also scans.
        let mut h = OperatorState::new("S");
        h.insert(keyed(1, 0, 0, 1), Timestamp::ZERO);
        let empty = JoinKeySpec::between(
            &PredicateSet::new(),
            SourceSet::single(SourceId(1)),
            SourceSet::single(SourceId(0)),
        );
        assert_eq!(h.probe(&empty, &keyed(0, 0, 0, 1)).len(), 1);
    }

    #[test]
    fn probe_with_missing_probe_column_scans() {
        let mut s = OperatorState::new("S_B");
        s.insert(keyed(1, 0, 0, 1), Timestamp::ZERO);
        s.insert(keyed(1, 1, 10, 2), Timestamp::from_millis(10));
        // A probe from source 2 carries none of the spec's probe columns.
        let foreign = keyed(2, 0, 20, 1);
        assert_eq!(s.probe(&ab_spec(), &foreign).len(), 2);
    }

    #[test]
    fn stored_tuples_missing_key_columns_go_to_overflow() {
        let mut s = OperatorState::new("S_B");
        let spec = ab_spec();
        s.insert(keyed(1, 0, 0, 7), Timestamp::ZERO);
        // A stored tuple from another source lacks the stored-side column:
        // it must be examined by every probe (scan semantics for it).
        s.insert(keyed(2, 1, 10, 999), Timestamp::from_millis(10));
        let hits = s.probe(&spec, &keyed(0, 0, 20, 7));
        assert_eq!(hits.len(), 2);
        let hits = s.probe(&spec, &keyed(0, 1, 20, 12345));
        assert_eq!(hits.len(), 1); // only the overflow entry
    }

    #[test]
    fn indexes_survive_purge_drain_and_restore() {
        let w = Window::new(Duration::from_secs(10));
        let spec = ab_spec();
        let mut s = OperatorState::new("S_B");
        for i in 0..6u64 {
            s.insert(
                keyed(1, i, i * 1_000, (i % 2) as i64),
                Timestamp::from_millis(i * 1_000),
            );
        }
        // Build the index, then mutate the state in every supported way.
        assert_eq!(s.probe(&spec, &keyed(0, 0, 5_000, 0)).len(), 3);
        let drained = s.drain_where(|e| e.tuple.parts()[0].seq == 2);
        assert_eq!(drained.len(), 1);
        assert_eq!(s.probe(&spec, &keyed(0, 0, 5_000, 0)).len(), 2);
        s.restore(drained.into_iter().next().unwrap());
        assert_eq!(s.probe(&spec, &keyed(0, 0, 5_000, 0)).len(), 3);
        // Purge everything older than 11s − 10s = 1s.
        let removed = s.purge(w, Timestamp::from_millis(11_000));
        assert_eq!(removed, 2); // ts 0 and 1000 expired
        let hits = s.probe(&spec, &keyed(0, 0, 11_000, 0));
        let seqs: Vec<u64> = hits
            .iter()
            .map(|&h| s.get(h).unwrap().tuple.parts()[0].seq)
            .collect();
        assert_eq!(seqs, vec![4, 2]); // insertion order: 4 arrived before the restore of 2
    }

    #[test]
    fn compaction_keeps_probes_and_iteration_correct() {
        let w = Window::new(Duration::from_secs(1));
        let spec = ab_spec();
        let mut s = OperatorState::new("S_B");
        // Force many insert/purge cycles to trigger compaction.
        for round in 0..40u64 {
            for i in 0..10u64 {
                let ts = round * 10_000 + i;
                s.insert(
                    keyed(1, round * 10 + i, ts, (i % 3) as i64),
                    Timestamp::from_millis(ts),
                );
            }
            let _ = s.probe(&spec, &keyed(0, 0, round * 10_000 + 9, 0));
            s.purge(w, Timestamp::from_millis(round * 10_000 + 9_000));
        }
        assert!(s.is_empty());
        assert_eq!(s.size_bytes(), 0);
        s.insert(keyed(1, 1_000, 400_000, 2), Timestamp::from_millis(400_000));
        assert_eq!(s.probe(&spec, &keyed(0, 0, 400_000, 2)).len(), 1);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn state_cache_shares_one_state_per_key() {
        let mut cache: StateCache<(u16, u64)> = StateCache::new();
        let a1 = cache.acquire((0, 60_000), || OperatorState::new("S_A"));
        let a2 = cache.acquire((0, 60_000), || {
            unreachable!("second acquire must reuse the cached state")
        });
        assert!(Rc::ptr_eq(&a1, &a2));
        assert_eq!(cache.refcount(&(0, 60_000)), 2);
        assert_eq!(cache.len(), 1);
        // A mutation through one handle is visible through the other.
        a1.borrow_mut()
            .insert(tuple(1, 100), Timestamp::from_millis(100));
        assert_eq!(a2.borrow().len(), 1);
        // A different key materializes a fresh state.
        let b = cache.acquire((1, 60_000), || OperatorState::new("S_B"));
        assert!(!Rc::ptr_eq(&a1, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn state_cache_release_reclaims_at_zero() {
        let mut cache: StateCache<&'static str> = StateCache::new();
        let s = cache.acquire("k", || OperatorState::new("S"));
        let _s2 = cache.acquire("k", || OperatorState::new("unused"));
        assert!(!cache.release(&"k"), "one consumer remains");
        assert_eq!(cache.refcount(&"k"), 1);
        assert!(cache.peek(&"k").is_some());
        assert!(cache.release(&"k"), "last release drops the entry");
        assert!(cache.is_empty());
        assert_eq!(cache.refcount(&"k"), 0);
        assert!(cache.peek(&"k").is_none());
        // Releasing an unknown key is a no-op.
        assert!(!cache.release(&"k"));
        // The handle itself stays alive for whoever still holds it.
        s.borrow_mut().insert(tuple(1, 0), Timestamp::ZERO);
        assert_eq!(s.borrow().len(), 1);
        // Re-acquiring after reclamation starts from a fresh state.
        let fresh = cache.acquire("k", || OperatorState::new("S"));
        assert!(fresh.borrow().is_empty());
    }

    #[test]
    fn state_cache_accounts_shared_vs_isolated_bytes() {
        let mut cache: StateCache<u8> = StateCache::new();
        let a = cache.acquire(0, || OperatorState::new("S_A"));
        let _a2 = cache.acquire(0, || OperatorState::new("unused"));
        let _a3 = cache.acquire(0, || OperatorState::new("unused"));
        let b = cache.acquire(1, || OperatorState::new("S_B"));
        a.borrow_mut().insert(tuple(1, 0), Timestamp::ZERO);
        b.borrow_mut().insert(tuple(2, 0), Timestamp::ZERO);
        let a_bytes = a.borrow().size_bytes();
        let b_bytes = b.borrow().size_bytes();
        assert_eq!(cache.shared_bytes(), a_bytes + b_bytes);
        // Without sharing, the three consumers of key 0 would each hold a
        // copy of S_A.
        assert_eq!(cache.isolated_bytes(), 3 * a_bytes + b_bytes);
    }

    #[test]
    fn checkpoint_round_trips_entries_and_expiry() {
        let w = Window::new(Duration::from_secs(10));
        let spec = ab_spec();
        let mut s = OperatorState::new("S_B");
        for i in 0..6u64 {
            s.insert(
                keyed(1, i, i * 1_000, (i % 2) as i64),
                Timestamp::from_millis(i * 1_000),
            );
        }
        // A drained-and-restored entry keeps its original insertion time
        // through the checkpoint.
        let drained = s.drain_where(|e| e.tuple.parts()[0].seq == 2);
        s.restore(drained.into_iter().next().unwrap());
        let blob = s.checkpoint();

        let mut r = OperatorState::new("S_B");
        r.restore_checkpoint(&blob).unwrap();
        assert_eq!(r.len(), s.len());
        assert_eq!(r.size_bytes(), s.size_bytes());
        let seqs = |state: &OperatorState| -> Vec<u64> {
            state.iter().map(|e| e.tuple.parts()[0].seq).collect()
        };
        assert_eq!(seqs(&r), seqs(&s));
        // Purge and probe behave identically after the restore.
        assert_eq!(
            r.purge(w, Timestamp::from_millis(12_000)),
            s.purge(w, Timestamp::from_millis(12_000))
        );
        // Handles are state-local (the drain/restore in `s` renumbered one
        // entry), so compare the probed tuples, not the raw handles.
        let probe = keyed(0, 0, 12_000, 0);
        let probed = |state: &mut OperatorState| -> Vec<jit_types::TupleKey> {
            let hits = state.probe(&spec, &probe);
            hits.iter()
                .filter_map(|&h| state.get(h).map(|e| e.tuple.key()))
                .collect()
        };
        assert_eq!(probed(&mut r), probed(&mut s));

        // A checkpoint for a differently named state is rejected.
        let mut wrong = OperatorState::new("S_A");
        assert!(wrong.restore_checkpoint(&blob).is_err());
    }

    #[test]
    fn hashed_and_scan_agree_on_candidate_matches() {
        let preds = PredicateSet::clique(2);
        let spec = JoinKeySpec::between(
            &preds,
            SourceSet::single(SourceId(1)),
            SourceSet::single(SourceId(0)),
        );
        let mut hashed = OperatorState::new("H");
        let mut scan = OperatorState::with_index_mode("S", StateIndexMode::Scan);
        for i in 0..50u64 {
            let t = keyed(1, i, i * 7, (i % 5) as i64);
            hashed.insert(t.clone(), Timestamp::from_millis(i * 7));
            scan.insert(t, Timestamp::from_millis(i * 7));
        }
        for key in 0..6i64 {
            let probe = keyed(0, 0, 400, key);
            let matching = |state: &mut OperatorState| -> Vec<jit_types::TupleKey> {
                let hits = state.probe(&spec, &probe);
                hits.iter()
                    .filter_map(|&h| state.get(h).map(|e| &e.tuple))
                    .filter(|t| preds.matches(&probe, t))
                    .map(|t| t.key())
                    .collect()
            };
            assert_eq!(matching(&mut hashed), matching(&mut scan), "key {key}");
        }
    }
}
