//! M-Join half-join operators (Figure 2a).
//!
//! An M-Join plan evaluates an m-way join without storing intermediate
//! results: tuples from each source travel along a linear path of `m − 1`
//! *half-join* operators, each holding the state of one other source. A
//! half-join has two inputs: the pipeline input carrying (possibly composite)
//! tuples to probe, and a maintenance input carrying the tuples of the source
//! whose state it owns.

use crate::operator::{
    DataMessage, OpContext, Operator, OperatorOutput, Port, ResultBlock, LEFT, RIGHT,
};
use crate::state::{JoinKeySpec, OperatorState, StateIndexMode};
use jit_metrics::{CostKind, RunMetrics};
use jit_types::{PredicateSet, SourceSet, Window};
use serde::Content;

/// Port on which tuples to probe arrive.
pub const PROBE_PORT: Port = LEFT;
/// Port on which the state's own source tuples arrive.
pub const MAINTENANCE_PORT: Port = RIGHT;

/// A half-join: probes its single state with pipeline tuples and maintains
/// that state from its own source. It stores no intermediate results.
#[derive(Debug)]
pub struct HalfJoinOperator {
    name: String,
    pipeline_schema: SourceSet,
    state_schema: SourceSet,
    state: OperatorState,
    predicates: PredicateSet,
    window: Window,
    probe_spec: JoinKeySpec,
}

impl HalfJoinOperator {
    /// Create a half-join probing tuples covering `pipeline_schema` against
    /// the state of the source(s) in `state_schema`.
    pub fn new(
        name: impl Into<String>,
        pipeline_schema: SourceSet,
        state_schema: SourceSet,
        predicates: PredicateSet,
        window: Window,
    ) -> Self {
        let name = name.into();
        HalfJoinOperator {
            state: OperatorState::new(format!("{name}.S")),
            probe_spec: JoinKeySpec::between(&predicates, state_schema, pipeline_schema),
            name,
            pipeline_schema,
            state_schema,
            predicates,
            window,
        }
    }

    /// Select how the maintained state answers probes (default
    /// [`StateIndexMode::Hashed`]).
    pub fn with_state_index(mut self, mode: StateIndexMode) -> Self {
        self.state.set_index_mode(mode);
        self
    }

    /// Number of tuples currently in the maintained state.
    pub fn state_len(&self) -> usize {
        self.state.len()
    }
}

impl Operator for HalfJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.pipeline_schema.union(self.state_schema)
    }

    fn num_ports(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let now = ctx.now;
        let purged = self.state.purge(self.window, now);
        ctx.metrics.stats.purged_tuples += purged as u64;
        ctx.metrics.charge(CostKind::StatePurge, purged as u64);

        match port {
            MAINTENANCE_PORT => {
                // Maintain the state; produce nothing.
                self.state.insert(msg.tuple.clone(), now);
                ctx.metrics.stats.state_insertions += 1;
                ctx.metrics.charge(CostKind::StateInsert, 1);
                OperatorOutput::empty()
            }
            _ => {
                // Probe the state with the pipeline tuple; do not store it.
                // The scan baseline iterates the slab directly. Matches
                // assemble columnar-ly, as in the symmetric join: components
                // land in per-source columns instead of a fresh sorted
                // `Tuple` per match ([`Tuple::join`] fails exactly when the
                // coverages overlap, so the disjointness guard is the same
                // filter the row path applied).
                ctx.metrics.stats.state_probes += 1;
                let mut results = ResultBlock::new();
                let mut evals = 0u64;
                let window = self.window;
                let predicates = &self.predicates;
                {
                    let mut examine =
                        |entry: &crate::state::StoredTuple, metrics: &mut RunMetrics| {
                            metrics.stats.probe_pairs += 1;
                            metrics.charge(CostKind::ProbePair, 1);
                            if window.can_join(msg.tuple.ts(), entry.tuple.ts())
                                && predicates.join_matches(&msg.tuple, &entry.tuple, &mut evals)
                                && msg.tuple.sources().is_disjoint(entry.tuple.sources())
                            {
                                metrics.charge(CostKind::ResultBuild, 1);
                                results.push_join(&msg.tuple, &entry.tuple, msg.marked);
                            }
                        };
                    if self.state.index_mode() == StateIndexMode::Scan {
                        for entry in self.state.iter() {
                            examine(entry, ctx.metrics);
                        }
                    } else {
                        for seq in self.state.probe(&self.probe_spec, &msg.tuple) {
                            if let Some(entry) = self.state.get(seq) {
                                examine(entry, ctx.metrics);
                            }
                        }
                    }
                }
                ctx.metrics.stats.predicate_evals += evals;
                ctx.metrics.charge(CostKind::PredicateEval, evals);
                OperatorOutput::with_columnar(results)
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.state.size_bytes()
    }

    fn checkpoint(&self) -> Content {
        self.state.checkpoint()
    }

    fn restore(&mut self, state: &Content) -> Result<(), serde::Error> {
        self.state.restore_checkpoint(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{BaseTuple, Duration, SourceId, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn msg(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        ))))
    }

    fn half_join() -> HalfJoinOperator {
        // Probing A tuples against S_B under the 2-source clique predicate.
        HalfJoinOperator::new(
            "A⋉S_B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            PredicateSet::clique(2),
            Window::new(Duration::from_secs(60)),
        )
    }

    #[test]
    fn maintenance_inserts_without_output() {
        let mut op = half_join();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        let out = op.process(MAINTENANCE_PORT, &msg(1, 0, 0, &[7]), &mut ctx);
        assert!(out.results.is_empty());
        assert_eq!(op.state_len(), 1);
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn probe_joins_but_does_not_store() {
        let mut op = half_join();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        op.process(MAINTENANCE_PORT, &msg(1, 0, 0, &[7]), &mut ctx);
        op.process(MAINTENANCE_PORT, &msg(1, 1, 10, &[8]), &mut ctx);
        let mut ctx = OpContext::new(Timestamp::from_millis(100), &mut metrics);
        let out = op.process(PROBE_PORT, &msg(0, 0, 100, &[7]), &mut ctx);
        assert!(out.results.is_empty(), "probe output is columnar");
        assert_eq!(out.columnar.map_or(0, |b| b.len()), 1);
        // The probe tuple is NOT inserted — the M-Join stores no intermediates.
        assert_eq!(op.state_len(), 2);
    }

    #[test]
    fn expired_state_tuples_are_purged_before_probing() {
        let mut op = half_join();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        op.process(MAINTENANCE_PORT, &msg(1, 0, 0, &[7]), &mut ctx);
        let mut ctx = OpContext::new(Timestamp::from_millis(120_000), &mut metrics);
        let out = op.process(PROBE_PORT, &msg(0, 0, 120_000, &[7]), &mut ctx);
        assert!(out.results.is_empty());
        assert!(out.columnar.is_none_or(|b| b.is_empty()));
        assert_eq!(op.state_len(), 0);
    }

    #[test]
    fn schema_is_union() {
        let op = half_join();
        assert_eq!(op.output_schema(), SourceSet::first_n(2));
        assert_eq!(op.num_ports(), 2);
        assert!(op.name().contains('⋉'));
    }
}
