//! # jit-exec
//!
//! The DSMS execution substrate the JIT mechanism plugs into: a small,
//! self-contained continuous-query engine in the spirit of PIPES (the
//! framework the paper's C++ prototype was built on).
//!
//! The substrate provides:
//!
//! * [`operator::Operator`] — the operator abstraction. Operators receive
//!   data messages on numbered input ports, may emit result messages and
//!   upstream [`jit_types::Feedback`], and can be asked to handle feedback
//!   coming from their consumers.
//! * [`state::OperatorState`] — indexed sliding-window operator state:
//!   hash-partitioned probing on the equi-join key ([`state::JoinKeySpec`])
//!   with a scan fallback, timestamp-ordered O(expired) purging, and
//!   running byte accounting.
//! * [`join::RefJoinOperator`] — the reference (REF) binary window join:
//!   plain purge–probe–insert with no feedback, exactly the baseline the
//!   paper compares against.
//! * [`selection::SelectionOperator`], [`static_join::StaticJoinOperator`] —
//!   the additional consumer types of Section V.
//! * [`mjoin`] and [`eddy`] — the alternative plan architectures of
//!   Figure 2 (M-Join paths and the Eddy/STeM design).
//! * [`plan`] — executable plan graphs wiring operators to sources and to
//!   each other.
//! * [`scheduler`] — the priority task scheduler implementing the policies
//!   of Section III-B (feedback pre-empts data processing; resumed
//!   production is delivered ahead of regular work).
//! * [`executor::Executor`] — drives arrival events through the plan one
//!   cascade at a time, routes feedback, collects results and metrics.
//!
//! Everything here is JIT-agnostic: the REF baseline runs purely on this
//! crate, and `jit-core` layers MNS detection, blacklists and dynamic
//! production control on top by implementing the same [`operator::Operator`]
//! trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eddy;
pub mod executor;
pub mod join;
pub mod mjoin;
pub mod operator;
pub mod output;
pub mod plan;
pub mod scheduler;
pub mod selection;
pub mod state;
pub mod static_join;

pub use executor::{Executor, ExecutorConfig};
pub use join::RefJoinOperator;
pub use operator::{
    BatchPrep, DataMessage, FeedbackOutcome, OpContext, Operator, OperatorId, OperatorOutput, Port,
    ProbePrep, SuppressionDigest, LEFT, RIGHT,
};
pub use plan::{ExecutablePlan, Input, PlanBuilder, PlanError};
pub use scheduler::{Priority, Scheduler, Task, TaskKind};
pub use state::{JoinKeySpec, OperatorState, SharedState, StateCache, StateIndexMode, StoredTuple};
