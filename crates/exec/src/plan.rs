//! Executable plan graphs.
//!
//! A plan wires operator instances to streaming sources and to each other via
//! the consumer–producer relationship. Plans are built bottom-up with
//! [`PlanBuilder`]: an operator's inputs must already exist when it is added,
//! which makes cycles impossible by construction.

use crate::operator::{Operator, OperatorId, Port};
use jit_types::SourceId;
use std::fmt;

/// What feeds one input port of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// A raw streaming source.
    Source(SourceId),
    /// The output of another operator (the producer).
    Operator(OperatorId),
}

/// One operator in the plan, together with its wiring.
pub struct OperatorSlot {
    /// The operator instance.
    pub operator: Box<dyn Operator>,
    /// What feeds each input port (`inputs[p]` feeds port `p`).
    pub inputs: Vec<Input>,
    /// The downstream operators consuming this operator's output, and the
    /// port on which they receive it. Computed by [`PlanBuilder::build`].
    pub consumers: Vec<(OperatorId, Port)>,
    /// Is this a sink (its results are the query's final output)?
    pub is_sink: bool,
}

impl fmt::Debug for OperatorSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperatorSlot")
            .field("operator", &self.operator.name())
            .field("inputs", &self.inputs)
            .field("consumers", &self.consumers)
            .field("is_sink", &self.is_sink)
            .finish()
    }
}

/// A fully wired, validated plan ready to be executed.
#[derive(Debug)]
pub struct ExecutablePlan {
    /// Operator slots indexed by [`OperatorId`].
    pub slots: Vec<OperatorSlot>,
    /// For each source id (by index), the operators subscribed to it and the
    /// port on which they receive its tuples.
    pub source_subscribers: Vec<Vec<(OperatorId, Port)>>,
}

impl ExecutablePlan {
    /// Number of operators.
    pub fn num_operators(&self) -> usize {
        self.slots.len()
    }

    /// The sink operators (whose output is the query result).
    pub fn sinks(&self) -> Vec<OperatorId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_sink)
            .map(|(i, _)| OperatorId(i))
            .collect()
    }

    /// A textual rendering of the plan topology for diagnostics.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let inputs: Vec<String> = slot
                .inputs
                .iter()
                .map(|inp| match inp {
                    Input::Source(s) => format!("src {s}"),
                    Input::Operator(o) => o.to_string(),
                })
                .collect();
            out.push_str(&format!(
                "Op{} {} <- [{}]{}\n",
                i,
                slot.operator.name(),
                inputs.join(", "),
                if slot.is_sink { "  (sink)" } else { "" }
            ));
        }
        out
    }
}

/// Errors detected while assembling a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An input referenced an operator id that has not been added yet.
    UnknownOperator(OperatorId),
    /// The number of wired inputs does not match the operator's port count.
    PortMismatch {
        /// The offending operator.
        operator: OperatorId,
        /// Ports the operator expects.
        expected: usize,
        /// Inputs actually wired.
        got: usize,
    },
    /// The plan has no operators.
    Empty,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownOperator(id) => write!(f, "input references unknown operator {id}"),
            PlanError::PortMismatch {
                operator,
                expected,
                got,
            } => write!(
                f,
                "{operator} expects {expected} input port(s) but {got} were wired"
            ),
            PlanError::Empty => write!(f, "plan contains no operators"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Bottom-up plan assembly.
#[derive(Default)]
pub struct PlanBuilder {
    slots: Vec<(Box<dyn Operator>, Vec<Input>)>,
    max_source: usize,
}

impl PlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Add an operator whose ports are fed by `inputs` (port `p` gets
    /// `inputs[p]`). Returns the operator's id.
    pub fn add_operator(&mut self, operator: Box<dyn Operator>, inputs: Vec<Input>) -> OperatorId {
        for inp in &inputs {
            if let Input::Source(s) = inp {
                self.max_source = self.max_source.max(s.index() + 1);
            }
        }
        self.slots.push((operator, inputs));
        OperatorId(self.slots.len() - 1)
    }

    /// Validate the wiring and produce an executable plan.
    ///
    /// Operators that no other operator consumes become sinks.
    pub fn build(self) -> Result<ExecutablePlan, PlanError> {
        if self.slots.is_empty() {
            return Err(PlanError::Empty);
        }
        let n = self.slots.len();
        // Validate references and arity.
        for (idx, (op, inputs)) in self.slots.iter().enumerate() {
            if inputs.len() != op.num_ports() {
                return Err(PlanError::PortMismatch {
                    operator: OperatorId(idx),
                    expected: op.num_ports(),
                    got: inputs.len(),
                });
            }
            for inp in inputs {
                if let Input::Operator(OperatorId(p)) = inp {
                    if *p >= n {
                        return Err(PlanError::UnknownOperator(OperatorId(*p)));
                    }
                }
            }
        }
        // Compute consumers and source subscriptions.
        let mut consumers: Vec<Vec<(OperatorId, Port)>> = vec![Vec::new(); n];
        let mut source_subscribers: Vec<Vec<(OperatorId, Port)>> =
            vec![Vec::new(); self.max_source];
        for (idx, (_, inputs)) in self.slots.iter().enumerate() {
            for (port, inp) in inputs.iter().enumerate() {
                match inp {
                    Input::Operator(OperatorId(p)) => {
                        consumers[*p].push((OperatorId(idx), port));
                    }
                    Input::Source(s) => {
                        source_subscribers[s.index()].push((OperatorId(idx), port));
                    }
                }
            }
        }
        let slots = self
            .slots
            .into_iter()
            .zip(consumers)
            .map(|((operator, inputs), consumers)| {
                let is_sink = consumers.is_empty();
                OperatorSlot {
                    operator,
                    inputs,
                    consumers,
                    is_sink,
                }
            })
            .collect();
        Ok(ExecutablePlan {
            slots,
            source_subscribers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{DataMessage, OpContext, OperatorOutput};
    use jit_types::SourceSet;

    struct Dummy {
        name: String,
        ports: usize,
        schema: SourceSet,
    }

    impl Dummy {
        fn boxed(name: &str, ports: usize) -> Box<dyn Operator> {
            Box::new(Dummy {
                name: name.to_string(),
                ports,
                schema: SourceSet::first_n(1),
            })
        }
    }

    impl Operator for Dummy {
        fn name(&self) -> &str {
            &self.name
        }
        fn output_schema(&self) -> SourceSet {
            self.schema
        }
        fn num_ports(&self) -> usize {
            self.ports
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn builds_two_level_tree() {
        let mut b = PlanBuilder::new();
        let op1 = b.add_operator(
            Dummy::boxed("A⋈B", 2),
            vec![Input::Source(SourceId(0)), Input::Source(SourceId(1))],
        );
        let op2 = b.add_operator(
            Dummy::boxed("AB⋈C", 2),
            vec![Input::Operator(op1), Input::Source(SourceId(2))],
        );
        let plan = b.build().unwrap();
        assert_eq!(plan.num_operators(), 2);
        assert_eq!(plan.sinks(), vec![op2]);
        assert!(!plan.slots[op1.0].is_sink);
        assert_eq!(plan.slots[op1.0].consumers, vec![(op2, 0)]);
        assert_eq!(plan.source_subscribers[0], vec![(op1, 0)]);
        assert_eq!(plan.source_subscribers[2], vec![(op2, 1)]);
        let desc = plan.describe();
        assert!(desc.contains("A⋈B"));
        assert!(desc.contains("(sink)"));
    }

    #[test]
    fn empty_plan_is_rejected() {
        assert_eq!(PlanBuilder::new().build().unwrap_err(), PlanError::Empty);
    }

    #[test]
    fn port_mismatch_is_rejected() {
        let mut b = PlanBuilder::new();
        b.add_operator(Dummy::boxed("join", 2), vec![Input::Source(SourceId(0))]);
        match b.build() {
            Err(PlanError::PortMismatch { expected, got, .. }) => {
                assert_eq!(expected, 2);
                assert_eq!(got, 1);
            }
            other => panic!("expected port mismatch, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut b = PlanBuilder::new();
        b.add_operator(Dummy::boxed("bad", 1), vec![Input::Operator(OperatorId(5))]);
        match b.build() {
            Err(PlanError::UnknownOperator(OperatorId(5))) => {}
            other => panic!("expected unknown operator, got {other:?}"),
        }
    }

    #[test]
    fn multiple_sinks_are_allowed() {
        // M-Join style: two independent paths.
        let mut b = PlanBuilder::new();
        let a = b.add_operator(Dummy::boxed("pathA", 1), vec![Input::Source(SourceId(0))]);
        let c = b.add_operator(Dummy::boxed("pathB", 1), vec![Input::Source(SourceId(1))]);
        let plan = b.build().unwrap();
        assert_eq!(plan.sinks(), vec![a, c]);
    }

    #[test]
    fn error_display() {
        assert!(PlanError::Empty.to_string().contains("no operators"));
        assert!(PlanError::UnknownOperator(OperatorId(1))
            .to_string()
            .contains("Op1"));
    }
}
