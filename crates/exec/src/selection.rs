//! Selection (filter) operators.
//!
//! Section V (Figure 9a) uses a selection as the consumer of a join to show
//! that JIT consumers need not be joins. This module provides the plain
//! (REF) selection; the MNS-detecting variant lives in `jit-core`.

use crate::operator::{BatchPrep, DataMessage, OpContext, Operator, OperatorOutput, Port};
use jit_metrics::CostKind;
use jit_types::{kernel, Batch, BitMask, CompareOp, FilterPredicate, SourceSet, Timestamp};

/// A stateless filter that forwards only the tuples satisfying its predicate.
#[derive(Debug)]
pub struct SelectionOperator {
    name: String,
    predicate: FilterPredicate,
    input_schema: SourceSet,
}

impl SelectionOperator {
    /// Create a selection over inputs covering `input_schema`.
    pub fn new(
        name: impl Into<String>,
        predicate: FilterPredicate,
        input_schema: SourceSet,
    ) -> Self {
        SelectionOperator {
            name: name.into(),
            predicate,
            input_schema,
        }
    }

    /// The filter predicate.
    pub fn predicate(&self) -> &FilterPredicate {
        &self.predicate
    }

    /// Evaluate the predicate over every row of `batch` into a packed mask —
    /// one [`kernel::filter_mask`] call when the batch carries a columnar
    /// projection of the filtered column, the scalar per-row check
    /// otherwise. "Not applicable" (a row not carrying the column) is a
    /// rejection, exactly as on the tuple path.
    fn eval_batch(&self, batch: &Batch, mask: &mut BitMask) {
        let col = self.predicate.column;
        if col.source != batch.source() {
            // The filtered column cannot appear on any row of this batch.
            *mask = BitMask::zeros(batch.len());
            return;
        }
        if let Some(array) = batch.column(col.column as usize) {
            kernel::filter_mask(array, self.predicate.op, &self.predicate.constant, mask);
            return;
        }
        // No columnar projection (or the column is beyond it): decide each
        // row from its base tuple.
        *mask = BitMask::zeros(batch.len());
        let op = self.predicate.op;
        for (i, row) in batch.rows().iter().enumerate() {
            let pass = row.value(col.column).is_some_and(|v| match op {
                CompareOp::Eq => *v == self.predicate.constant,
                CompareOp::Ne => *v != self.predicate.constant,
                CompareOp::Lt => *v < self.predicate.constant,
                CompareOp::Le => *v <= self.predicate.constant,
                CompareOp::Gt => *v > self.predicate.constant,
                CompareOp::Ge => *v >= self.predicate.constant,
            });
            mask.set(i, pass);
        }
    }
}

impl Operator for SelectionOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.input_schema
    }

    fn num_ports(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        _port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        ctx.metrics.stats.predicate_evals += 1;
        ctx.metrics.charge(CostKind::PredicateEval, 1);
        // A tuple that does not cover the filtered column cannot satisfy the
        // filter; treat "not applicable" as rejection.
        if self.predicate.holds_on(&msg.tuple).unwrap_or(false) {
            OperatorOutput::with_results(vec![msg.clone()])
        } else {
            OperatorOutput::empty()
        }
    }

    fn prepare_batch(
        &mut self,
        _port: Port,
        batch: &Batch,
        _block_min_ts: Timestamp,
        ctx: &mut OpContext<'_>,
    ) -> Option<BatchPrep> {
        // One predicate evaluation per row, exactly as the tuple path
        // charges — front-loaded so the whole batch is charged in one call.
        ctx.metrics.stats.predicate_evals += batch.len() as u64;
        ctx.metrics
            .charge(CostKind::PredicateEval, batch.len() as u64);
        let mut mask = BitMask::new();
        self.eval_batch(batch, &mut mask);
        Some(BatchPrep::Mask(mask))
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{BaseTuple, ColumnRef, SourceId, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn msg(val: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            0,
            Timestamp::ZERO,
            vec![Value::int(val)],
        ))))
    }

    fn selection() -> SelectionOperator {
        // σ A.x0 > 200, as in Figure 9a.
        SelectionOperator::new(
            "σ A.x0>200",
            FilterPredicate::gt(ColumnRef::new(SourceId(0), 0), 200),
            SourceSet::single(SourceId(0)),
        )
    }

    #[test]
    fn passes_matching_tuples() {
        let mut op = selection();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        let out = op.process(0, &msg(250), &mut ctx);
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn drops_non_matching_tuples() {
        let mut op = selection();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        assert!(op.process(0, &msg(150), &mut ctx).results.is_empty());
        assert_eq!(metrics.stats.predicate_evals, 1);
    }

    #[test]
    fn not_applicable_is_rejected() {
        let mut op = selection();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        // Tuple from a different source: the filter column is absent.
        let other = DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(3),
            0,
            Timestamp::ZERO,
            vec![Value::int(999)],
        ))));
        assert!(op.process(0, &other, &mut ctx).results.is_empty());
    }

    #[test]
    fn metadata() {
        let op = selection();
        assert_eq!(op.num_ports(), 1);
        assert_eq!(op.memory_bytes(), 0);
        assert_eq!(op.output_schema(), SourceSet::single(SourceId(0)));
        assert!(op.name().contains('σ'));
        assert!(op.predicate().holds_on(&msg(300).tuple).unwrap());
    }
}
