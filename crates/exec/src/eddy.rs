//! The Eddy / STeM architecture (Figure 2b).
//!
//! An Eddy routes source tuples and intermediate results among per-source
//! state modules (STeMs) until they have visited every STeM, at which point
//! they are complete join results. This reproduction models the Eddy plus
//! its STeMs as a single n-ary operator: port `i` receives the tuples of
//! source `i`, each arrival is inserted into its own STeM and then routed
//! through the remaining STeMs (smallest state first — a simple adaptive
//! routing policy) accumulating partial results, which never need to be
//! stored because routing completes within the arrival's cascade.

use crate::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
use crate::state::{JoinKeySpec, OperatorState, StateIndexMode};
use jit_metrics::CostKind;
use jit_types::{FastMap, PredicateSet, SourceId, SourceSet, Tuple, Window};
use serde::Content;

/// How the Eddy picks the next STeM to visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Visit the remaining STeMs in source-id order.
    Fixed,
    /// Visit the remaining STeM with the fewest stored tuples first (greedy
    /// selectivity-agnostic adaptive policy).
    SmallestStateFirst,
}

/// An n-way Eddy over the sources `0..n`.
#[derive(Debug)]
pub struct EddyOperator {
    name: String,
    states: Vec<OperatorState>,
    predicates: PredicateSet,
    window: Window,
    policy: RoutingPolicy,
    /// Probe specs cached per (stem, frontier source set) — adaptive
    /// routing makes the frontiers seen at a stem dynamic, so they are
    /// derived on first sight rather than precomputed.
    spec_cache: FastMap<(usize, SourceSet), JoinKeySpec>,
}

impl EddyOperator {
    /// Create an Eddy over `num_sources` sources.
    pub fn new(
        name: impl Into<String>,
        num_sources: usize,
        predicates: PredicateSet,
        window: Window,
        policy: RoutingPolicy,
    ) -> Self {
        let states = (0..num_sources)
            .map(|i| OperatorState::new(format!("STeM {}", SourceId(i as u16))))
            .collect();
        EddyOperator {
            name: name.into(),
            states,
            predicates,
            window,
            policy,
            spec_cache: FastMap::default(),
        }
    }

    /// Number of sources (and STeMs).
    pub fn num_sources(&self) -> usize {
        self.states.len()
    }

    /// Number of tuples in the STeM of `source`.
    pub fn stem_len(&self, source: SourceId) -> usize {
        self.states[source.index()].len()
    }

    /// Select how the STeMs answer probes (default
    /// [`StateIndexMode::Hashed`]). Because the routed partial results grow
    /// as they visit STeMs, each STeM builds one index per distinct partial
    /// shape that probes it — the just-in-time indexing discipline.
    pub fn with_state_index(mut self, mode: StateIndexMode) -> Self {
        for state in &mut self.states {
            state.set_index_mode(mode);
        }
        self
    }

    /// The order in which the remaining STeMs will be visited.
    fn route_order(&self, start: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..self.states.len()).filter(|&i| i != start).collect();
        if self.policy == RoutingPolicy::SmallestStateFirst {
            others.sort_by_key(|&i| self.states[i].len());
        }
        others
    }
}

impl Operator for EddyOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        SourceSet::first_n(self.states.len())
    }

    fn num_ports(&self) -> usize {
        self.states.len()
    }

    fn process(
        &mut self,
        port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        debug_assert!(port < self.states.len());
        let now = ctx.now;

        // Purge every STeM at the current time.
        let mut purged = 0;
        for state in &mut self.states {
            purged += state.purge(self.window, now);
        }
        ctx.metrics.stats.purged_tuples += purged as u64;
        ctx.metrics.charge(CostKind::StatePurge, purged as u64);

        // Insert the new tuple into its own STeM.
        self.states[port].insert(msg.tuple.clone(), now);
        ctx.metrics.stats.state_insertions += 1;
        ctx.metrics.charge(CostKind::StateInsert, 1);

        // Route through the remaining STeMs, accumulating partial results.
        let mut partials: Vec<Tuple> = vec![msg.tuple.clone()];
        for stem in self.route_order(port) {
            if partials.is_empty() {
                break;
            }
            ctx.metrics.stats.state_probes += 1;
            let mut next: Vec<Tuple> = Vec::new();
            let mut evals = 0u64;
            // Every partial on this frontier covers the same source set (the
            // start source plus the stems already visited), so one cached
            // spec serves the whole batch. The cache is keyed by
            // (stem, frontier) because adaptive routing makes the visit
            // order — and with it the frontiers seen at a stem — dynamic.
            let frontier = partials[0].sources();
            if !self.spec_cache.contains_key(&(stem, frontier)) {
                let spec = JoinKeySpec::between(
                    &self.predicates,
                    SourceSet::single(SourceId(stem as u16)),
                    frontier,
                );
                self.spec_cache.insert((stem, frontier), spec);
            }
            let spec = &self.spec_cache[&(stem, frontier)];
            let scan = self.states[stem].index_mode() == StateIndexMode::Scan;
            let window = self.window;
            let predicates = &self.predicates;
            for partial in &partials {
                let mut examine =
                    |entry: &crate::state::StoredTuple, metrics: &mut jit_metrics::RunMetrics| {
                        metrics.stats.probe_pairs += 1;
                        metrics.charge(CostKind::ProbePair, 1);
                        if window.can_join(partial.ts(), entry.tuple.ts())
                            && predicates.join_matches(partial, &entry.tuple, &mut evals)
                        {
                            if let Ok(joined) = partial.join(&entry.tuple) {
                                metrics.charge(CostKind::ResultBuild, 1);
                                next.push(joined);
                            }
                        }
                    };
                if scan {
                    for entry in self.states[stem].iter() {
                        examine(entry, ctx.metrics);
                    }
                } else {
                    for seq in self.states[stem].probe(spec, partial) {
                        if let Some(entry) = self.states[stem].get(seq) {
                            examine(entry, ctx.metrics);
                        }
                    }
                }
            }
            ctx.metrics.stats.predicate_evals += evals;
            ctx.metrics.charge(CostKind::PredicateEval, evals);
            // Partial results that did not reach the full schema yet continue
            // routing; in this clique setting every STeM visit extends the
            // tuple by exactly one source, so `next` is the frontier.
            ctx.metrics.stats.intermediate_produced += next.len() as u64;
            partials = next;
        }

        OperatorOutput::with_results(partials.into_iter().map(DataMessage::new).collect())
    }

    fn memory_bytes(&self) -> usize {
        self.states.iter().map(|s| s.size_bytes()).sum()
    }

    fn checkpoint(&self) -> Content {
        // The spec cache is derived (rebuilt on first sight of each
        // frontier), so only the STeM contents are persisted.
        Content::Seq(self.states.iter().map(OperatorState::checkpoint).collect())
    }

    fn restore(&mut self, state: &Content) -> Result<(), serde::Error> {
        let stems = state
            .as_seq()
            .ok_or_else(|| serde::Error::expected("array", "EddyOperator"))?;
        if stems.len() != self.states.len() {
            return Err(serde::Error::msg(format!(
                "checkpoint has {} STeMs but the Eddy has {}",
                stems.len(),
                self.states.len()
            )));
        }
        for (own, blob) in self.states.iter_mut().zip(stems) {
            own.restore_checkpoint(blob)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{BaseTuple, Duration, Timestamp, Value};
    use std::sync::Arc;

    fn msg(source: u16, seq: u64, ts_ms: u64, vals: &[i64]) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vals.iter().map(|&v| Value::int(v)).collect(),
        ))))
    }

    fn eddy(policy: RoutingPolicy) -> EddyOperator {
        EddyOperator::new(
            "eddy",
            3,
            PredicateSet::clique(3),
            Window::new(Duration::from_secs(60)),
            policy,
        )
    }

    #[test]
    fn produces_full_join_results() {
        let mut op = eddy(RoutingPolicy::Fixed);
        let mut metrics = RunMetrics::new();
        // Clique over A,B,C: A=(toB,toC), B=(toA,toC), C=(toA,toB).
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        assert!(op
            .process(0, &msg(0, 0, 0, &[1, 2]), &mut ctx)
            .results
            .is_empty());
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        assert!(op
            .process(1, &msg(1, 0, 10, &[1, 3]), &mut ctx)
            .results
            .is_empty());
        let mut ctx = OpContext::new(Timestamp::from_millis(20), &mut metrics);
        let out = op.process(2, &msg(2, 0, 20, &[2, 3]), &mut ctx);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].tuple.num_parts(), 3);
        assert_eq!(op.stem_len(SourceId(0)), 1);
        assert_eq!(op.stem_len(SourceId(2)), 1);
    }

    #[test]
    fn non_matching_tuple_produces_nothing() {
        let mut op = eddy(RoutingPolicy::SmallestStateFirst);
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        op.process(0, &msg(0, 0, 0, &[1, 2]), &mut ctx);
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(2, &msg(2, 0, 10, &[9, 9]), &mut ctx);
        assert!(out.results.is_empty());
    }

    #[test]
    fn expired_tuples_are_purged_from_all_stems() {
        let mut op = eddy(RoutingPolicy::Fixed);
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        op.process(0, &msg(0, 0, 0, &[1, 2]), &mut ctx);
        let mut ctx = OpContext::new(Timestamp::from_millis(120_000), &mut metrics);
        op.process(1, &msg(1, 0, 120_000, &[1, 3]), &mut ctx);
        assert_eq!(op.stem_len(SourceId(0)), 0);
        assert_eq!(op.stem_len(SourceId(1)), 1);
    }

    #[test]
    fn routing_policies_visit_smallest_first() {
        let mut op = eddy(RoutingPolicy::SmallestStateFirst);
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        // Two B tuples, one C tuple.
        op.process(1, &msg(1, 0, 0, &[1, 3]), &mut ctx);
        op.process(1, &msg(1, 1, 0, &[1, 3]), &mut ctx);
        op.process(2, &msg(2, 0, 0, &[2, 3]), &mut ctx);
        // Route order from source 0 should put the C STeM (1 tuple) before B (2).
        assert_eq!(op.route_order(0), vec![2, 1]);
        let fixed = eddy(RoutingPolicy::Fixed);
        assert_eq!(fixed.route_order(0), vec![1, 2]);
    }

    #[test]
    fn metadata() {
        let op = eddy(RoutingPolicy::Fixed);
        assert_eq!(op.num_sources(), 3);
        assert_eq!(op.num_ports(), 3);
        assert_eq!(op.output_schema(), SourceSet::first_n(3));
        assert_eq!(op.memory_bytes(), 0);
    }
}
