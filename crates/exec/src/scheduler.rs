//! The intra-cascade task scheduler.
//!
//! Section III-B of the paper describes how JIT interacts with the DSMS
//! operator scheduler: feedback must pre-empt regular processing, and a
//! producer serving a resumption gets priority over its consumer so the
//! consumer never idles waiting for the requested tuples.
//!
//! In this single-threaded reproduction a *cascade* (the complete processing
//! of one source arrival) is a queue of tasks. The scheduler realises the
//! paper's policies as three priority classes, processed strictly in order:
//!
//! 1. [`Priority::Control`] — feedback handling (pre-empts everything);
//! 2. [`Priority::Resumed`] — delivery of results produced in response to a
//!    resumption (producer-over-consumer priority);
//! 3. [`Priority::Normal`] — regular data processing, FIFO.

use crate::operator::{DataMessage, OperatorId, Port};
use jit_types::Feedback;
use std::collections::VecDeque;

/// Priority class of a scheduled task (lower value = more urgent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Feedback handling; pre-empts all data processing.
    Control,
    /// Delivery of resumed production.
    Resumed,
    /// Regular data delivery.
    Normal,
}

/// What a task asks an operator to do.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// Process a data message arriving on a port.
    Data {
        /// Destination input port.
        port: Port,
        /// The message to process.
        msg: DataMessage,
    },
    /// Handle a feedback message from a consumer.
    Feedback(Feedback),
}

/// A unit of work for one operator.
#[derive(Debug, Clone)]
pub struct Task {
    /// The operator that should perform the work.
    pub to: OperatorId,
    /// What to do.
    pub kind: TaskKind,
}

/// Three-class priority queue of tasks with byte accounting for the queued
/// data messages (the "inter-operator queues" of Section III-B).
#[derive(Debug, Default)]
pub struct Scheduler {
    control: VecDeque<Task>,
    resumed: VecDeque<Task>,
    normal: VecDeque<Task>,
    queued_bytes: usize,
    pushed_total: u64,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Enqueue a task at the given priority.
    pub fn push(&mut self, task: Task, priority: Priority) {
        self.pushed_total += 1;
        if let TaskKind::Data { msg, .. } = &task.kind {
            self.queued_bytes += msg.size_bytes();
        }
        match priority {
            Priority::Control => self.control.push_back(task),
            Priority::Resumed => self.resumed.push_back(task),
            Priority::Normal => self.normal.push_back(task),
        }
    }

    /// Dequeue the most urgent task, if any.
    pub fn pop(&mut self) -> Option<Task> {
        let task = self
            .control
            .pop_front()
            .or_else(|| self.resumed.pop_front())
            .or_else(|| self.normal.pop_front())?;
        if let TaskKind::Data { msg, .. } = &task.kind {
            self.queued_bytes -= msg.size_bytes();
        }
        Some(task)
    }

    /// Are there no pending tasks?
    pub fn is_empty(&self) -> bool {
        self.control.is_empty() && self.resumed.is_empty() && self.normal.is_empty()
    }

    /// Number of pending tasks.
    pub fn len(&self) -> usize {
        self.control.len() + self.resumed.len() + self.normal.len()
    }

    /// Bytes held by queued data messages.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Total tasks ever enqueued.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, SourceId, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn data_task(op: usize, seq: u64) -> Task {
        let tuple = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            seq,
            Timestamp::from_millis(seq),
            vec![Value::int(1)],
        )));
        Task {
            to: OperatorId(op),
            kind: TaskKind::Data {
                port: 0,
                msg: DataMessage::new(tuple),
            },
        }
    }

    fn feedback_task(op: usize) -> Task {
        Task {
            to: OperatorId(op),
            kind: TaskKind::Feedback(Feedback::suspend(vec![])),
        }
    }

    #[test]
    fn priorities_are_strict() {
        let mut s = Scheduler::new();
        s.push(data_task(1, 1), Priority::Normal);
        s.push(data_task(2, 2), Priority::Resumed);
        s.push(feedback_task(3), Priority::Control);
        s.push(data_task(4, 3), Priority::Normal);

        let order: Vec<usize> = std::iter::from_fn(|| s.pop()).map(|t| t.to.0).collect();
        assert_eq!(order, vec![3, 2, 1, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_within_class() {
        let mut s = Scheduler::new();
        for i in 0..5 {
            s.push(data_task(i, i as u64), Priority::Normal);
        }
        let order: Vec<usize> = std::iter::from_fn(|| s.pop()).map(|t| t.to.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn byte_accounting_tracks_data_messages_only() {
        let mut s = Scheduler::new();
        assert_eq!(s.queued_bytes(), 0);
        s.push(feedback_task(0), Priority::Control);
        assert_eq!(s.queued_bytes(), 0);
        s.push(data_task(1, 1), Priority::Normal);
        assert!(s.queued_bytes() > 0);
        let before = s.queued_bytes();
        s.push(data_task(2, 2), Priority::Normal);
        assert!(s.queued_bytes() > before);
        while s.pop().is_some() {}
        assert_eq!(s.queued_bytes(), 0);
    }

    #[test]
    fn counters() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.push(data_task(0, 1), Priority::Normal);
        s.push(data_task(0, 2), Priority::Resumed);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pushed_total(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.pushed_total(), 2);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let mut s = Scheduler::new();
        assert!(s.pop().is_none());
    }
}
