//! Join of a stream with a static relation.
//!
//! Section V (Figure 9b) has the consumer `Op2` join the producer's output
//! with a static relation `R_C` instead of another stream. The relation never
//! changes, so such a consumer can issue suspension feedback but never needs
//! resumption.

use crate::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
use jit_metrics::CostKind;
use jit_types::{BaseTuple, PredicateSet, SourceId, SourceSet, Tuple};
use std::sync::Arc;

/// Joins each streaming input tuple against a fixed, in-memory relation.
#[derive(Debug)]
pub struct StaticJoinOperator {
    name: String,
    input_schema: SourceSet,
    relation_source: SourceId,
    relation: Vec<Arc<BaseTuple>>,
    relation_bytes: usize,
    predicates: PredicateSet,
}

impl StaticJoinOperator {
    /// Create the operator. `relation` plays the role of `R_C`; its tuples
    /// must all come from `relation_source`.
    pub fn new(
        name: impl Into<String>,
        input_schema: SourceSet,
        relation_source: SourceId,
        relation: Vec<Arc<BaseTuple>>,
        predicates: PredicateSet,
    ) -> Self {
        let relation_bytes = relation.iter().map(|t| t.size_bytes()).sum();
        StaticJoinOperator {
            name: name.into(),
            input_schema,
            relation_source,
            relation,
            relation_bytes,
            predicates,
        }
    }

    /// Number of tuples in the static relation.
    pub fn relation_len(&self) -> usize {
        self.relation.len()
    }
}

impl Operator for StaticJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.input_schema
            .union(SourceSet::single(self.relation_source))
    }

    fn num_ports(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        _port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        ctx.metrics.stats.state_probes += 1;
        let mut results = Vec::new();
        let mut evals = 0u64;
        for rel_tuple in &self.relation {
            ctx.metrics.stats.probe_pairs += 1;
            let rel = Tuple::from_base(rel_tuple.clone());
            if self.predicates.join_matches(&msg.tuple, &rel, &mut evals) {
                if let Ok(joined) = msg.tuple.join(&rel) {
                    ctx.metrics.charge(CostKind::ResultBuild, 1);
                    results.push(DataMessage {
                        tuple: joined,
                        marked: msg.marked,
                    });
                }
            }
        }
        ctx.metrics
            .charge(CostKind::ProbePair, self.relation.len() as u64);
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);
        OperatorOutput::with_results(results)
    }

    fn memory_bytes(&self) -> usize {
        self.relation_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{ColumnRef, EquiPredicate, Timestamp, Value};

    fn rel_tuple(seq: u64, val: i64) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(2),
            seq,
            Timestamp::ZERO,
            vec![Value::int(val)],
        ))
    }

    fn stream_msg(val: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            0,
            Timestamp::from_millis(10),
            vec![Value::int(val)],
        ))))
    }

    fn operator() -> StaticJoinOperator {
        // Predicate A.x0 = C.x0; relation holds values 1, 2, 2.
        StaticJoinOperator::new(
            "⋈ R_C",
            SourceSet::single(SourceId(0)),
            SourceId(2),
            vec![rel_tuple(0, 1), rel_tuple(1, 2), rel_tuple(2, 2)],
            PredicateSet::from_predicates(vec![EquiPredicate::new(
                ColumnRef::new(SourceId(0), 0),
                ColumnRef::new(SourceId(2), 0),
            )]),
        )
    }

    #[test]
    fn joins_against_every_matching_relation_tuple() {
        let mut op = operator();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(0, &stream_msg(2), &mut ctx);
        assert_eq!(out.results.len(), 2);
        assert!(out.results.iter().all(|r| r.tuple.num_parts() == 2));
    }

    #[test]
    fn no_match_no_results() {
        let mut op = operator();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(0, &stream_msg(7), &mut ctx);
        assert!(out.results.is_empty());
        assert_eq!(metrics.stats.probe_pairs, 3);
    }

    #[test]
    fn metadata_and_memory() {
        let op = operator();
        assert_eq!(op.relation_len(), 3);
        assert_eq!(op.num_ports(), 1);
        assert!(op.memory_bytes() > 0);
        assert_eq!(
            op.output_schema(),
            SourceSet::from_iter([SourceId(0), SourceId(2)])
        );
    }
}
