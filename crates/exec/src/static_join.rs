//! Join of a stream with a static relation.
//!
//! Section V (Figure 9b) has the consumer `Op2` join the producer's output
//! with a static relation `R_C` instead of another stream. The relation never
//! changes, so such a consumer can issue suspension feedback but never needs
//! resumption.

use crate::operator::{DataMessage, OpContext, Operator, OperatorOutput, Port};
use crate::state::{HashIndex, JoinKeySpec, StateIndexMode};
use jit_metrics::CostKind;
use jit_types::{BaseTuple, PredicateSet, SourceId, SourceSet, Tuple};
use std::sync::Arc;

/// Joins each streaming input tuple against a fixed, in-memory relation.
///
/// The relation never changes, so under [`StateIndexMode::Hashed`] (the
/// default) it is hash-partitioned once at construction on the equi-join key
/// facing the stream; probes then touch only the matching partition.
/// Relation tuples missing a key column are kept aside and scanned by every
/// probe, and a probe missing a key value falls back to the full scan —
/// exactly the [`crate::state::OperatorState`] fallback semantics.
#[derive(Debug)]
pub struct StaticJoinOperator {
    name: String,
    input_schema: SourceSet,
    relation_source: SourceId,
    relation: Vec<Arc<BaseTuple>>,
    relation_bytes: usize,
    predicates: PredicateSet,
    mode: StateIndexMode,
    probe_spec: JoinKeySpec,
    /// Relation positions (as handles) bucketed by their equi-join key,
    /// built once — the relation never changes.
    index: HashIndex,
}

impl StaticJoinOperator {
    /// Create the operator. `relation` plays the role of `R_C`; its tuples
    /// must all come from `relation_source`.
    pub fn new(
        name: impl Into<String>,
        input_schema: SourceSet,
        relation_source: SourceId,
        relation: Vec<Arc<BaseTuple>>,
        predicates: PredicateSet,
    ) -> Self {
        let relation_bytes = relation.iter().map(|t| t.size_bytes()).sum();
        let probe_spec = JoinKeySpec::between(
            &predicates,
            SourceSet::single(relation_source),
            input_schema,
        );
        let mut op = StaticJoinOperator {
            name: name.into(),
            input_schema,
            relation_source,
            relation,
            relation_bytes,
            predicates,
            mode: StateIndexMode::Hashed,
            probe_spec,
            index: HashIndex::default(),
        };
        op.rebuild_index();
        op
    }

    /// Select how the relation answers probes (default
    /// [`StateIndexMode::Hashed`]).
    pub fn with_state_index(mut self, mode: StateIndexMode) -> Self {
        self.mode = mode;
        self.rebuild_index();
        self
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        if self.mode == StateIndexMode::Scan || self.probe_spec.is_empty() {
            return;
        }
        for (pos, rel_tuple) in self.relation.iter().enumerate() {
            let tuple = Tuple::from_base(rel_tuple.clone());
            self.index.file(&self.probe_spec, &tuple, pos as u64);
        }
    }

    /// Positions of the candidate relation tuples for one probe, ascending.
    fn candidate_positions(&self, probe: &Tuple) -> Vec<usize> {
        if self.mode == StateIndexMode::Scan || self.probe_spec.is_empty() {
            return (0..self.relation.len()).collect();
        }
        let Some(key) = self.probe_spec.probe_key(probe) else {
            return (0..self.relation.len()).collect();
        };
        self.index
            .candidates(&key)
            .into_iter()
            .map(|handle| handle as usize)
            .collect()
    }

    /// Number of tuples in the static relation.
    pub fn relation_len(&self) -> usize {
        self.relation.len()
    }
}

impl Operator for StaticJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.input_schema
            .union(SourceSet::single(self.relation_source))
    }

    fn num_ports(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        _port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        ctx.metrics.stats.state_probes += 1;
        let mut results = Vec::new();
        let mut evals = 0u64;
        for pos in self.candidate_positions(&msg.tuple) {
            ctx.metrics.stats.probe_pairs += 1;
            ctx.metrics.charge(CostKind::ProbePair, 1);
            let rel = Tuple::from_base(self.relation[pos].clone());
            if self.predicates.join_matches(&msg.tuple, &rel, &mut evals) {
                if let Ok(joined) = msg.tuple.join(&rel) {
                    ctx.metrics.charge(CostKind::ResultBuild, 1);
                    results.push(DataMessage {
                        tuple: joined,
                        marked: msg.marked,
                    });
                }
            }
        }
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);
        OperatorOutput::with_results(results)
    }

    fn memory_bytes(&self) -> usize {
        self.relation_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{ColumnRef, EquiPredicate, Timestamp, Value};

    fn rel_tuple(seq: u64, val: i64) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(2),
            seq,
            Timestamp::ZERO,
            vec![Value::int(val)],
        ))
    }

    fn stream_msg(val: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            0,
            Timestamp::from_millis(10),
            vec![Value::int(val)],
        ))))
    }

    fn operator() -> StaticJoinOperator {
        // Predicate A.x0 = C.x0; relation holds values 1, 2, 2.
        StaticJoinOperator::new(
            "⋈ R_C",
            SourceSet::single(SourceId(0)),
            SourceId(2),
            vec![rel_tuple(0, 1), rel_tuple(1, 2), rel_tuple(2, 2)],
            PredicateSet::from_predicates(vec![EquiPredicate::new(
                ColumnRef::new(SourceId(0), 0),
                ColumnRef::new(SourceId(2), 0),
            )]),
        )
    }

    #[test]
    fn joins_against_every_matching_relation_tuple() {
        let mut op = operator();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(0, &stream_msg(2), &mut ctx);
        assert_eq!(out.results.len(), 2);
        assert!(out.results.iter().all(|r| r.tuple.num_parts() == 2));
    }

    #[test]
    fn no_match_no_results() {
        let mut op = operator();
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(0, &stream_msg(7), &mut ctx);
        assert!(out.results.is_empty());
        // The hash partition for value 7 is empty — no pairs examined.
        assert_eq!(metrics.stats.probe_pairs, 0);
        // The scan baseline examines the whole relation.
        let mut op = operator().with_state_index(crate::state::StateIndexMode::Scan);
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(10), &mut metrics);
        let out = op.process(0, &stream_msg(7), &mut ctx);
        assert!(out.results.is_empty());
        assert_eq!(metrics.stats.probe_pairs, 3);
    }

    #[test]
    fn metadata_and_memory() {
        let op = operator();
        assert_eq!(op.relation_len(), 3);
        assert_eq!(op.num_ports(), 1);
        assert!(op.memory_bytes() > 0);
        assert_eq!(
            op.output_schema(),
            SourceSet::from_iter([SourceId(0), SourceId(2)])
        );
    }
}
