//! Result-set utilities used by correctness checks.
//!
//! The key invariant of the whole reproduction is that JIT (and DOE) produce
//! exactly the same result multiset as REF. These helpers compare result
//! sets by the identity of their component base tuples, and verify the
//! temporal-order and window-validity properties of Section II.

use jit_types::{Tuple, TupleKey, Window};
use std::collections::BTreeMap;

/// The multiset of results, keyed by component identity.
pub fn result_multiset(results: &[Tuple]) -> BTreeMap<TupleKey, usize> {
    let mut m = BTreeMap::new();
    for t in results {
        *m.entry(t.key()).or_insert(0) += 1;
    }
    m
}

/// Do two result collections contain exactly the same tuples (as multisets)?
pub fn same_results(a: &[Tuple], b: &[Tuple]) -> bool {
    result_multiset(a) == result_multiset(b)
}

/// The results present in `a` but missing from `b` (respecting
/// multiplicities); useful for debugging divergence.
pub fn missing_from(a: &[Tuple], b: &[Tuple]) -> Vec<TupleKey> {
    let mut bm = result_multiset(b);
    let mut missing = Vec::new();
    for t in a {
        let k = t.key();
        match bm.get_mut(&k) {
            Some(c) if *c > 0 => *c -= 1,
            _ => missing.push(k),
        }
    }
    missing
}

/// Does any result appear more than once?
pub fn has_duplicates(results: &[Tuple]) -> bool {
    result_multiset(results).values().any(|&c| c > 1)
}

/// Are the results in non-decreasing timestamp order (the reporting
/// requirement of Section II)?
pub fn is_temporally_ordered(results: &[Tuple]) -> bool {
    results.windows(2).all(|w| w[0].ts() <= w[1].ts())
}

/// Does every result respect the window: all its components pairwise within
/// `w` of each other?
pub fn all_within_window(results: &[Tuple], window: Window) -> bool {
    results
        .iter()
        .all(|t| t.ts().saturating_sub(t.min_ts()) <= window.length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, Duration, SourceId, Timestamp, Value};
    use std::sync::Arc;

    fn pair(a_seq: u64, b_seq: u64, a_ts: u64, b_ts: u64) -> Tuple {
        let a = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            a_seq,
            Timestamp::from_millis(a_ts),
            vec![Value::int(1)],
        )));
        let b = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(1),
            b_seq,
            Timestamp::from_millis(b_ts),
            vec![Value::int(1)],
        )));
        a.join(&b).unwrap()
    }

    #[test]
    fn multiset_counts_duplicates() {
        let r = vec![pair(0, 0, 0, 1), pair(0, 0, 0, 1), pair(1, 0, 5, 1)];
        let m = result_multiset(&r);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&pair(0, 0, 0, 1).key()], 2);
        assert!(has_duplicates(&r));
        assert!(!has_duplicates(&r[1..]));
    }

    #[test]
    fn same_results_is_order_insensitive() {
        let a = vec![pair(0, 0, 0, 1), pair(1, 1, 2, 3)];
        let b = vec![pair(1, 1, 2, 3), pair(0, 0, 0, 1)];
        assert!(same_results(&a, &b));
        let c = vec![pair(1, 1, 2, 3)];
        assert!(!same_results(&a, &c));
        // multiplicity matters
        let d = vec![pair(0, 0, 0, 1), pair(0, 0, 0, 1)];
        let e = vec![pair(0, 0, 0, 1)];
        assert!(!same_results(&d, &e));
    }

    #[test]
    fn missing_from_reports_the_difference() {
        let a = vec![pair(0, 0, 0, 1), pair(1, 1, 2, 3)];
        let b = vec![pair(0, 0, 0, 1)];
        let missing = missing_from(&a, &b);
        assert_eq!(missing, vec![pair(1, 1, 2, 3).key()]);
        assert!(missing_from(&b, &a).is_empty());
    }

    #[test]
    fn temporal_order_check() {
        let ordered = vec![pair(0, 0, 0, 10), pair(1, 1, 5, 20), pair(2, 2, 20, 20)];
        assert!(is_temporally_ordered(&ordered));
        let unordered = vec![pair(0, 0, 0, 30), pair(1, 1, 5, 20)];
        assert!(!is_temporally_ordered(&unordered));
        assert!(is_temporally_ordered(&[]));
    }

    #[test]
    fn window_validity_check() {
        let w = Window::new(Duration::from_secs(10));
        let ok = vec![pair(0, 0, 0, 9_000)];
        let bad = vec![pair(0, 0, 0, 11_000)];
        assert!(all_within_window(&ok, w));
        assert!(!all_within_window(&bad, w));
    }
}
