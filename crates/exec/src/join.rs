//! The reference (REF) binary window join.
//!
//! This is the baseline the paper compares JIT against: the classic
//! purge–probe–insert routine for sliding-window joins (Kang et al.,
//! reference \[16\]), storing every generated intermediate result. It never
//! sends or reacts to feedback. Probing goes through the
//! [`OperatorState`] index layer: hash-partitioned on the equi-join key by
//! default, with a nested-loop scan fallback (and
//! [`StateIndexMode::Scan`] forcing the historical behaviour).

use crate::operator::{
    BatchPrep, DataMessage, OpContext, Operator, OperatorOutput, Port, ProbePrep, ResultBlock,
    LEFT, RIGHT,
};
use crate::state::{JoinKeySpec, OperatorState, StateIndexMode};
use jit_metrics::{CostKind, RunMetrics};
use jit_types::{kernel, Batch, PredicateSet, SourceSet, Timestamp, Value, Window};
use serde::Content;

/// Binary sliding-window equi-join without feedback (the REF baseline).
#[derive(Debug)]
pub struct RefJoinOperator {
    name: String,
    left_schema: SourceSet,
    right_schema: SourceSet,
    left_state: OperatorState,
    right_state: OperatorState,
    predicates: PredicateSet,
    window: Window,
    /// Key spec for probing the right state with left inputs (and its
    /// mirror): derived once from the predicates spanning the two schemas.
    probe_right_spec: JoinKeySpec,
    probe_left_spec: JoinKeySpec,
    /// Reusable candidate buffer for the probe path — cleared and refilled
    /// per probe so steady state allocates nothing.
    scratch_hits: Vec<u64>,
}

impl RefJoinOperator {
    /// Create a join whose left/right inputs produce tuples covering
    /// `left_schema` / `right_schema`. Only the predicates spanning the two
    /// schemas are evaluated here; the full set is retained so composite
    /// outputs can be checked by downstream operators.
    pub fn new(
        name: impl Into<String>,
        left_schema: SourceSet,
        right_schema: SourceSet,
        predicates: PredicateSet,
        window: Window,
    ) -> Self {
        let name = name.into();
        RefJoinOperator {
            left_state: OperatorState::new(format!("{name}.SL")),
            right_state: OperatorState::new(format!("{name}.SR")),
            probe_right_spec: JoinKeySpec::between(&predicates, right_schema, left_schema),
            probe_left_spec: JoinKeySpec::between(&predicates, left_schema, right_schema),
            scratch_hits: Vec::new(),
            name,
            left_schema,
            right_schema,
            predicates,
            window,
        }
    }

    /// Select how the two states answer probes (default
    /// [`StateIndexMode::Hashed`]).
    pub fn with_state_index(mut self, mode: StateIndexMode) -> Self {
        self.left_state.set_index_mode(mode);
        self.right_state.set_index_mode(mode);
        self
    }

    /// The left input's schema.
    pub fn left_schema(&self) -> SourceSet {
        self.left_schema
    }

    /// The right input's schema.
    pub fn right_schema(&self) -> SourceSet {
        self.right_schema
    }

    /// The operator's window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// Number of tuples currently stored in the left state.
    pub fn left_len(&self) -> usize {
        self.left_state.len()
    }

    /// Number of tuples currently stored in the right state.
    pub fn right_len(&self) -> usize {
        self.right_state.len()
    }

    /// The purge–probe–insert core shared by the tuple and batch paths.
    ///
    /// `precomputed_key` is `None` on the tuple path (the key is assembled
    /// from the message) and `Some(key)` on the batch path (the key was
    /// extracted columnar-ly in [`RefJoinOperator::prepare_batch`]; an
    /// inner `None` means the row has no usable key and scans). The two
    /// paths charge exactly the same counters.
    fn process_row(
        &mut self,
        port: Port,
        msg: &DataMessage,
        precomputed_key: Option<Option<&[Value]>>,
        skip_purge: bool,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        debug_assert!(port == LEFT || port == RIGHT);
        let now = ctx.now;
        let mut hits = std::mem::take(&mut self.scratch_hits);
        let (own_state, opp_state, spec) = if port == LEFT {
            (
                &mut self.left_state,
                &mut self.right_state,
                &self.probe_right_spec,
            )
        } else {
            (
                &mut self.right_state,
                &mut self.left_state,
                &self.probe_left_spec,
            )
        };

        // Purge: drop expired tuples from both states. The batch path skips
        // this only when `prepare_batch` proved the purge would be empty —
        // `StatePurge` is charged per purged tuple, so the skip is
        // counter-neutral.
        if !skip_purge {
            let purged = own_state.purge(self.window, now) + opp_state.purge(self.window, now);
            ctx.metrics.stats.purged_tuples += purged as u64;
            ctx.metrics.charge(CostKind::StatePurge, purged as u64);
        }

        // Probe: only the candidate partners the index returns; the scan
        // baseline iterates the slab directly (no per-probe allocation).
        // Matches assemble columnar-ly: components land in per-source
        // columns instead of a fresh sorted `Tuple` per match.
        ctx.metrics.stats.state_probes += 1;
        let mut results = ResultBlock::new();
        let mut evals = 0u64;
        let window = self.window;
        let predicates = &self.predicates;
        {
            let mut examine = |entry: &crate::state::StoredTuple, metrics: &mut RunMetrics| {
                metrics.stats.probe_pairs += 1;
                metrics.charge(CostKind::ProbePair, 1);
                if window.can_join(msg.tuple.ts(), entry.tuple.ts())
                    && predicates.join_matches(&msg.tuple, &entry.tuple, &mut evals)
                    && msg.tuple.sources().is_disjoint(entry.tuple.sources())
                {
                    metrics.charge(CostKind::ResultBuild, 1);
                    results.push_join(&msg.tuple, &entry.tuple, msg.marked);
                }
            };
            if opp_state.index_mode() == StateIndexMode::Scan {
                for entry in opp_state.iter() {
                    examine(entry, ctx.metrics);
                }
            } else {
                match precomputed_key {
                    Some(key) => opp_state.probe_slice_into(spec, key, &mut hits),
                    None => opp_state.probe_into(spec, &msg.tuple, &mut hits),
                }
                for &seq in &hits {
                    if let Some(entry) = opp_state.get(seq) {
                        examine(entry, ctx.metrics);
                    }
                }
            }
        }
        ctx.metrics.stats.predicate_evals += evals;
        ctx.metrics.charge(CostKind::PredicateEval, evals);

        // Insert: store the incoming tuple in its own state.
        own_state.insert(msg.tuple.clone(), now);
        ctx.metrics.stats.state_insertions += 1;
        ctx.metrics.charge(CostKind::StateInsert, 1);

        hits.clear();
        self.scratch_hits = hits;
        OperatorOutput::with_columnar(results)
    }
}

impl Operator for RefJoinOperator {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SourceSet {
        self.left_schema.union(self.right_schema)
    }

    fn num_ports(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        port: Port,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        self.process_row(port, msg, None, false, ctx)
    }

    fn prepare_batch(
        &mut self,
        port: Port,
        batch: &Batch,
        block_min_ts: Timestamp,
        ctx: &mut OpContext<'_>,
    ) -> Option<BatchPrep> {
        debug_assert!(port == LEFT || port == RIGHT);
        let (opp_state, spec) = if port == LEFT {
            (&self.right_state, &self.probe_right_spec)
        } else {
            (&self.left_state, &self.probe_left_spec)
        };

        // Purge elision: `ctx.now` bounds the executor clock for the whole
        // block. If neither state holds a tuple expiring by then, and no
        // tuple inserted *during* the block can expire either (every such
        // tuple — leaf row or intermediate — has ts ≥ `block_min_ts`), then
        // every per-row purge would remove zero tuples. `StatePurge` is
        // charged per purged tuple, so eliding those calls changes no
        // counter.
        let horizon = ctx.now;
        let clear = |s: &OperatorState| {
            s.next_expiry()
                .is_none_or(|ts| !self.window.is_expired(ts, horizon))
        };
        let skip_purge = clear(&self.left_state)
            && clear(&self.right_state)
            && !self.window.is_expired(block_min_ts, horizon);

        // Columnar key extraction via the shared kernel: one pass per key
        // column over the batch, instead of one `Vec<Value>` assembly per
        // row at probe time. Rows whose key cannot be formed fall back to
        // the scan path, exactly as a failed `probe_key` does in tuple mode.
        let mut keys = Vec::new();
        let mut valid = Vec::new();
        let mut arity = 0;
        if opp_state.index_mode() != StateIndexMode::Scan && !spec.is_empty() {
            let cols: Vec<_> = spec.probe_columns().collect();
            if cols.iter().all(|c| c.source == batch.source()) {
                arity = cols.len();
                kernel::extract_probe_keys(batch, &cols, &mut keys, &mut valid);
            }
            // else: a probe column lives on another source, so no row of
            // this leaf batch can form the key — arity 0 makes every row
            // scan, matching tuple mode.
        }
        Some(BatchPrep::Probe(ProbePrep {
            keys,
            valid,
            arity,
            skip_purge,
        }))
    }

    fn process_batch_row(
        &mut self,
        port: Port,
        row: usize,
        prep: &BatchPrep,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let BatchPrep::Probe(prep) = prep else {
            return self.process(port, msg, ctx);
        };
        // `prep` borrows from the executor's block state, not from `self`,
        // so the key slice stays available across the mutable call.
        self.process_row(port, msg, Some(prep.key(row)), prep.skip_purge, ctx)
    }

    fn memory_bytes(&self) -> usize {
        self.left_state.size_bytes() + self.right_state.size_bytes()
    }

    fn checkpoint(&self) -> Content {
        Content::Map(vec![
            ("left".to_string(), self.left_state.checkpoint()),
            ("right".to_string(), self.right_state.checkpoint()),
        ])
    }

    fn restore(&mut self, state: &Content) -> Result<(), serde::Error> {
        let map = state
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "RefJoinOperator"))?;
        self.left_state
            .restore_checkpoint(&serde::field::<Content>(map, "left", "RefJoinOperator")?)?;
        self.right_state
            .restore_checkpoint(&serde::field::<Content>(map, "right", "RefJoinOperator")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_metrics::RunMetrics;
    use jit_types::{BaseTuple, Duration, SourceId, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn setup() -> RefJoinOperator {
        // Two sources A (id 0) and B (id 1); predicate A.x0 = B.x0.
        RefJoinOperator::new(
            "A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            PredicateSet::clique(2),
            Window::new(Duration::from_secs(60)),
        )
    }

    fn msg(source: u16, seq: u64, ts_ms: u64, val: i64) -> DataMessage {
        DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts_ms),
            vec![Value::int(val)],
        ))))
    }

    fn process(
        op: &mut RefJoinOperator,
        port: Port,
        m: &DataMessage,
        metrics: &mut RunMetrics,
    ) -> OperatorOutput {
        let now = m.tuple.ts();
        let mut ctx = OpContext::new(now, metrics);
        op.process(port, m, &mut ctx)
    }

    #[test]
    fn matching_tuples_join() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        // b1 arrives first: no partners yet.
        let out = process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        assert!(out.result_messages().is_empty());
        assert_eq!(op.right_len(), 1);
        // a1 with matching value joins b1.
        let out = process(&mut op, LEFT, &msg(0, 0, 1_000, 7), &mut metrics);
        assert_eq!(out.num_results(), 1);
        assert_eq!(out.result_messages()[0].tuple.num_parts(), 2);
        assert_eq!(op.left_len(), 1);
        // a2 with a different value does not join.
        let out = process(&mut op, LEFT, &msg(0, 1, 2_000, 8), &mut metrics);
        assert!(out.result_messages().is_empty());
        assert_eq!(op.left_len(), 2);
        assert_eq!(metrics.stats.state_insertions, 3);
        // Indexed probing examines only candidates: a1 met b1's bucket, a2's
        // value has no bucket at all.
        assert_eq!(metrics.stats.probe_pairs, 1);
    }

    #[test]
    fn scan_mode_examines_every_stored_tuple() {
        let mut op = setup().with_state_index(crate::state::StateIndexMode::Scan);
        let mut metrics = RunMetrics::new();
        process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        process(&mut op, LEFT, &msg(0, 0, 1_000, 7), &mut metrics);
        let out = process(&mut op, LEFT, &msg(0, 1, 2_000, 8), &mut metrics);
        assert!(out.result_messages().is_empty());
        // The scan baseline pays one probe pair per stored opposite tuple.
        assert_eq!(metrics.stats.probe_pairs, 2);
    }

    #[test]
    fn multiple_partners_produce_multiple_results() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        for i in 0..3 {
            process(&mut op, RIGHT, &msg(1, i, i * 10, 5), &mut metrics);
        }
        let out = process(&mut op, LEFT, &msg(0, 0, 1_000, 5), &mut metrics);
        assert_eq!(out.num_results(), 3);
    }

    #[test]
    fn expired_tuples_do_not_join_and_are_purged() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        // 2 minutes later (window is 1 minute) the b tuple has expired.
        let out = process(&mut op, LEFT, &msg(0, 0, 120_000, 7), &mut metrics);
        assert!(out.result_messages().is_empty());
        assert_eq!(op.right_len(), 0);
        assert_eq!(metrics.stats.purged_tuples, 1);
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        // Exactly w apart: |t - t'| = w is allowed to join per Section II,
        // but the stored tuple expires at ts + w, so purge removes it first.
        let out = process(&mut op, LEFT, &msg(0, 0, 60_000, 7), &mut metrics);
        assert!(out.result_messages().is_empty());
        // Just inside the window it joins.
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        let out = process(&mut op, LEFT, &msg(0, 0, 59_999, 7), &mut metrics);
        assert_eq!(out.num_results(), 1);
    }

    #[test]
    fn memory_tracks_both_states() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        assert_eq!(op.memory_bytes(), 0);
        process(&mut op, LEFT, &msg(0, 0, 0, 1), &mut metrics);
        process(&mut op, RIGHT, &msg(1, 0, 10, 1), &mut metrics);
        assert!(op.memory_bytes() > 0);
        assert_eq!(
            op.memory_bytes(),
            op.left_state.size_bytes() + op.right_state.size_bytes()
        );
    }

    #[test]
    fn schema_and_ports() {
        let op = setup();
        assert_eq!(op.num_ports(), 2);
        assert_eq!(op.output_schema(), SourceSet::first_n(2));
        assert_eq!(op.name(), "A⋈B");
        assert_eq!(op.window().length, Duration::from_secs(60));
        assert_eq!(op.left_schema(), SourceSet::single(SourceId(0)));
        assert_eq!(op.right_schema(), SourceSet::single(SourceId(1)));
    }

    #[test]
    fn marked_flag_is_propagated() {
        let mut op = setup();
        let mut metrics = RunMetrics::new();
        process(&mut op, RIGHT, &msg(1, 0, 0, 7), &mut metrics);
        let mut marked = msg(0, 0, 100, 7);
        marked.marked = true;
        let out = process(&mut op, LEFT, &marked, &mut metrics);
        assert_eq!(out.num_results(), 1);
        assert!(out.result_messages()[0].marked);
    }

    #[test]
    fn composite_inputs_join_on_spanning_predicates() {
        // Operator joining AB with C under the 3-source clique.
        let mut op = RefJoinOperator::new(
            "AB⋈C",
            SourceSet::first_n(2),
            SourceSet::single(SourceId(2)),
            PredicateSet::clique(3),
            Window::new(Duration::from_secs(60)),
        );
        let mut metrics = RunMetrics::new();
        // Build an AB composite: A(x_b=1, x_c=9), B(x_a=1, x_c=4).
        let a = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(0),
            0,
            Timestamp::from_millis(0),
            vec![Value::int(1), Value::int(9)],
        )));
        let b = Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(1),
            0,
            Timestamp::from_millis(5),
            vec![Value::int(1), Value::int(4)],
        )));
        let ab = DataMessage::new(a.join(&b).unwrap());
        let mut ctx = OpContext::new(ab.tuple.ts(), &mut metrics);
        assert!(op.process(LEFT, &ab, &mut ctx).result_messages().is_empty());
        // C must match A on x0=9 and B on x1=4.
        let c_good = msg(2, 0, 100, 0);
        let c_good = DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(2),
            0,
            c_good.tuple.ts(),
            vec![Value::int(9), Value::int(4)],
        ))));
        let mut ctx = OpContext::new(c_good.tuple.ts(), &mut metrics);
        let out = op.process(RIGHT, &c_good, &mut ctx);
        assert_eq!(out.num_results(), 1);
        assert_eq!(out.result_messages()[0].tuple.num_parts(), 3);
        // A C tuple matching A but not B does not join.
        let c_bad = DataMessage::new(Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(2),
            1,
            Timestamp::from_millis(200),
            vec![Value::int(9), Value::int(5)],
        ))));
        let mut ctx = OpContext::new(c_bad.tuple.ts(), &mut metrics);
        assert!(op
            .process(RIGHT, &c_bad, &mut ctx)
            .result_messages()
            .is_empty());
    }
}
