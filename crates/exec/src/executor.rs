//! The cascade executor.
//!
//! The executor owns an [`ExecutablePlan`] and drives arrival events through
//! it. Processing one source arrival to quiescence is called a *cascade*:
//! the arrival is delivered to every operator subscribed to the source, their
//! outputs are scheduled for their consumers, feedback is routed upstream
//! with pre-emptive priority, and the cascade ends when no tasks remain.
//! Arrivals are processed strictly in timestamp order, so result timestamps
//! are non-decreasing at the sinks (the temporal-order requirement of
//! Section II).

use crate::operator::{
    BatchPrep, DataMessage, OpContext, OperatorId, OperatorOutput, Port, ResultBlock,
};
use crate::plan::{ExecutablePlan, Input, OperatorSlot};
use crate::scheduler::{Priority, Scheduler, Task, TaskKind};
use jit_metrics::{CostKind, MemComponentId, MetricsSnapshot, RunMetrics};
use jit_types::{BaseTuple, Block, FeedbackCommand, SourceId, Timestamp, Tuple};
use serde::{Content, Serialize};
use std::sync::Arc;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Keep every final result tuple in memory (needed for correctness
    /// checks; disable for long benchmark runs).
    pub collect_results: bool,
    /// Panic (in debug terms: return an error flag) if final results are
    /// emitted out of timestamp order.
    pub check_temporal_order: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            collect_results: true,
            check_temporal_order: true,
        }
    }
}

/// Drives a plan over a stream of arrivals and accumulates metrics.
pub struct Executor {
    slots: Vec<OperatorSlot>,
    source_subscribers: Vec<Vec<(OperatorId, Port)>>,
    scheduler: Scheduler,
    metrics: RunMetrics,
    op_mem: Vec<MemComponentId>,
    queue_mem: MemComponentId,
    results: Vec<Tuple>,
    results_count: u64,
    last_result_ts: Timestamp,
    order_violations: u64,
    config: ExecutorConfig,
    current_time: Timestamp,
    /// When set, the executor's clock is driven *only* by
    /// [`Executor::advance_watermark`]: arrivals are processed at the current
    /// watermark frontier even if their own timestamp is ahead of it (they
    /// were released by a reorder buffer that has not advanced the frontier
    /// past them yet), and the in-order `ingest` assertion is waived. This is
    /// the execution regime of `DisorderPolicy::Bounded`.
    watermark_clock: bool,
}

impl Executor {
    /// Create an executor for a plan with the given configuration.
    pub fn new(plan: ExecutablePlan, config: ExecutorConfig) -> Self {
        let mut metrics = RunMetrics::new();
        let op_mem = plan
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| metrics.register_memory(format!("op{} {}", i, s.operator.name())))
            .collect();
        let queue_mem = metrics.register_memory("inter-operator queues");
        Executor {
            slots: plan.slots,
            source_subscribers: plan.source_subscribers,
            scheduler: Scheduler::new(),
            metrics,
            op_mem,
            queue_mem,
            results: Vec::new(),
            results_count: 0,
            last_result_ts: Timestamp::ZERO,
            order_violations: 0,
            config,
            current_time: Timestamp::ZERO,
            watermark_clock: false,
        }
    }

    /// Create an executor with default configuration.
    pub fn with_defaults(plan: ExecutablePlan) -> Self {
        Executor::new(plan, ExecutorConfig::default())
    }

    /// Switch the executor onto the watermark clock (see the field docs on
    /// [`Executor`]): time advances only via [`Executor::advance_watermark`].
    /// Must be set before the first arrival.
    pub fn set_watermark_clock(&mut self, enabled: bool) {
        debug_assert_eq!(
            self.current_time,
            Timestamp::ZERO,
            "the clock regime must be chosen before the first arrival"
        );
        self.watermark_clock = enabled;
    }

    /// Ingest one base tuple from a source and run the cascade to
    /// completion.
    pub fn ingest(&mut self, source: SourceId, tuple: Arc<BaseTuple>) {
        if !self.watermark_clock {
            debug_assert!(
                tuple.ts >= self.current_time,
                "arrivals must be ingested in timestamp order"
            );
            self.current_time = tuple.ts;
        }
        self.metrics.stats.tuples_arrived += 1;
        let subscribers = self
            .source_subscribers
            .get(source.index())
            .cloned()
            .unwrap_or_default();
        let msg = DataMessage::new(Tuple::from_base(tuple));
        for (op, port) in subscribers {
            self.metrics.stats.queued_tuples += 1;
            self.metrics.charge(CostKind::QueueOp, 1);
            self.scheduler.push(
                Task {
                    to: op,
                    kind: TaskKind::Data {
                        port,
                        msg: msg.clone(),
                    },
                },
                Priority::Normal,
            );
        }
        self.run_cascade();
    }

    /// Ingest a [`Block`] of batched arrivals — the vectorized front door.
    ///
    /// Rows are replayed in the block's exact global push order, so results
    /// and every result-relevant counter match a tuple-at-a-time run. What
    /// the batch path saves is the per-arrival *leaf hop*: for a source
    /// with exactly one subscriber the row is delivered inline instead of
    /// through the scheduler, skipping the leaf task's queue/dispatch
    /// charges (`queued_tuples`, `QueueOp`, `tasks_executed`,
    /// `TaskDispatch`) and the per-leaf-task memory sample — those
    /// bookkeeping costs are the overhead being optimized away, not part
    /// of the workload's observable behaviour. Downstream cascades still
    /// run (and sample memory) identically between rows.
    ///
    /// Additionally, each batch gets one [`crate::operator::Operator::prepare_batch`]
    /// pass so operators with columnar kernels (selection bitmaps,
    /// pre-extracted probe keys, purge elision) can front-load per-row
    /// work. Sources with zero or multiple subscribers fall back to
    /// [`Executor::ingest`] verbatim, preserving the scheduler
    /// interleaving of competing leaf tasks.
    pub fn ingest_block(&mut self, block: &Block) {
        if block.is_empty() {
            return;
        }
        // Upper bound on the executor clock while the block replays: rows
        // advance it at most to the block's max timestamp (on the
        // watermark clock it does not move at all).
        let prep_now = if self.watermark_clock {
            self.current_time
        } else {
            self.current_time.max(block.max_ts())
        };
        let block_min_ts = block.min_ts();
        // One routing decision + prep pass per batch.
        let mut lanes: Vec<Option<(OperatorId, Port, Option<BatchPrep>)>> =
            Vec::with_capacity(block.batches().len());
        for batch in block.batches() {
            let subs = self.source_subscribers.get(batch.source().index());
            let lane = match subs.map(Vec::as_slice) {
                Some(&[(op, port)]) => {
                    let prep = {
                        let slot = &mut self.slots[op.0];
                        let mut ctx = OpContext::new(prep_now, &mut self.metrics);
                        slot.operator
                            .prepare_batch(port, batch, block_min_ts, &mut ctx)
                    };
                    Some((op, port, prep))
                }
                _ => None,
            };
            lanes.push(lane);
        }
        for &(b, r) in block.order() {
            let batch = &block.batches()[b as usize];
            let tuple = &batch.rows()[r as usize];
            let Some((op, port, prep)) = &lanes[b as usize] else {
                self.ingest(batch.source(), Arc::clone(tuple));
                continue;
            };
            if !self.watermark_clock {
                debug_assert!(
                    tuple.ts >= self.current_time,
                    "arrivals must be ingested in timestamp order"
                );
                self.current_time = tuple.ts;
            }
            self.metrics.stats.tuples_arrived += 1;
            if let Some(BatchPrep::Mask(mask)) = prep {
                // Selection bitmap: forward or drop the row without a
                // per-row dispatch; the predicate was charged in prep.
                if mask.get(r as usize) {
                    let msg = DataMessage::new(Tuple::from_base(Arc::clone(tuple)));
                    self.route_results(*op, vec![msg], Priority::Normal);
                    self.run_cascade();
                }
                continue;
            }
            let msg = DataMessage::new(Tuple::from_base(Arc::clone(tuple)));
            let now = self.current_time;
            let output = {
                let slot = &mut self.slots[op.0];
                let mut ctx = OpContext::new(now, &mut self.metrics);
                match prep {
                    Some(prep) => slot
                        .operator
                        .process_batch_row(*port, r as usize, prep, &msg, &mut ctx),
                    None => slot.operator.process(*port, &msg, &mut ctx),
                }
            };
            self.route_output(*op, output, Priority::Normal);
            self.run_cascade();
        }
        self.sample_memory();
    }

    /// Advance the executor clock to watermark `w` and give every operator
    /// its [`crate::operator::Operator::on_watermark`] turn (expiry-driven
    /// resumption in particular), running the resulting cascades.
    ///
    /// The caller must deliver this *after* pushing the tuples released up
    /// to `w`: those tuples are processed at the previous frontier, so a
    /// late-but-admissible probe still finds every stored partner the old
    /// frontier kept alive. Watermarks never move backwards.
    pub fn advance_watermark(&mut self, w: Timestamp) {
        if w <= self.current_time {
            return;
        }
        self.current_time = w;
        for idx in 0..self.slots.len() {
            let output = {
                let slot = &mut self.slots[idx];
                let mut ctx = OpContext::new(w, &mut self.metrics);
                slot.operator.on_watermark(&mut ctx)
            };
            self.route_output(OperatorId(idx), output, Priority::Resumed);
            self.run_cascade();
        }
    }

    /// Run scheduled tasks until the cascade is drained.
    fn run_cascade(&mut self) {
        while let Some(task) = self.scheduler.pop() {
            self.metrics.stats.tasks_executed += 1;
            self.metrics.charge(CostKind::TaskDispatch, 1);
            self.dispatch(task);
            self.sample_memory();
        }
    }

    /// Execute one task.
    fn dispatch(&mut self, task: Task) {
        let op_idx = task.to.0;
        let now = self.current_time;
        match task.kind {
            TaskKind::Data { port, msg } => {
                let output = {
                    let slot = &mut self.slots[op_idx];
                    let mut ctx = OpContext::new(now, &mut self.metrics);
                    slot.operator.process(port, &msg, &mut ctx)
                };
                self.route_output(task.to, output, Priority::Normal);
            }
            TaskKind::Feedback(fb) => {
                let outcome = {
                    let slot = &mut self.slots[op_idx];
                    let mut ctx = OpContext::new(now, &mut self.metrics);
                    ctx.metrics.charge(CostKind::FeedbackHandle, 1);
                    slot.operator.handle_feedback(&fb, &mut ctx)
                };
                // Resumed production is delivered ahead of regular work
                // (producer-over-consumer priority, Section III-B).
                self.route_results(task.to, outcome.resumed, Priority::Resumed);
                self.route_feedback(task.to, outcome.propagate);
            }
        }
    }

    /// Route everything in an [`OperatorOutput`]: row results first, then
    /// columnar results, then feedback (matching the order the operator
    /// produced them in).
    fn route_output(&mut self, from: OperatorId, output: OperatorOutput, priority: Priority) {
        let OperatorOutput {
            results,
            columnar,
            feedback,
        } = output;
        self.route_results(from, results, priority);
        if let Some(block) = columnar {
            self.route_columnar(from, block, priority);
        }
        self.route_feedback(from, feedback);
    }

    /// Forward a columnar [`ResultBlock`] to the producing operator's
    /// consumers. At a sink the rows are counted and order-checked straight
    /// from the block's timestamp column — no [`Tuple`] is materialised
    /// unless results are being collected. For intermediate operators each
    /// row is materialised once ([`ResultBlock::row_message`]) and queued
    /// per consumer exactly as on the row path, so scheduling order and
    /// every counter are identical.
    fn route_columnar(&mut self, from: OperatorId, block: ResultBlock, priority: Priority) {
        if block.is_empty() {
            return;
        }
        let (is_sink, consumers) = {
            let slot = &mut self.slots[from.0];
            (slot.is_sink, std::mem::take(&mut slot.consumers))
        };
        if is_sink {
            for r in 0..block.len() {
                self.results_count += 1;
                self.metrics.stats.results_emitted += 1;
                if self.config.check_temporal_order {
                    let ts = block.row_ts(r);
                    if ts < self.last_result_ts {
                        self.order_violations += 1;
                    }
                    self.last_result_ts = self.last_result_ts.max(ts);
                }
                if self.config.collect_results {
                    self.results.push(block.row_message(r).tuple);
                }
            }
        } else {
            self.metrics.stats.intermediate_produced += block.len() as u64;
            for r in 0..block.len() {
                let msg = block.row_message(r);
                for (consumer, port) in &consumers {
                    self.metrics.stats.queued_tuples += 1;
                    self.metrics.charge(CostKind::QueueOp, 1);
                    self.scheduler.push(
                        Task {
                            to: *consumer,
                            kind: TaskKind::Data {
                                port: *port,
                                msg: msg.clone(),
                            },
                        },
                        priority,
                    );
                }
            }
        }
        self.slots[from.0].consumers = consumers;
    }

    /// Forward an operator's results to its consumers (or record them as
    /// final output if the operator is a sink).
    fn route_results(&mut self, from: OperatorId, results: Vec<DataMessage>, priority: Priority) {
        if results.is_empty() {
            return;
        }
        // Borrow dance: take the consumer list out of the slot for the
        // duration of the scheduler pushes (which need `&mut self`) instead
        // of cloning it on every call — this runs once per produced message.
        let (is_sink, consumers) = {
            let slot = &mut self.slots[from.0];
            (slot.is_sink, std::mem::take(&mut slot.consumers))
        };
        if is_sink {
            for msg in results {
                self.results_count += 1;
                self.metrics.stats.results_emitted += 1;
                if self.config.check_temporal_order {
                    if msg.tuple.ts() < self.last_result_ts {
                        self.order_violations += 1;
                    }
                    self.last_result_ts = self.last_result_ts.max(msg.tuple.ts());
                }
                if self.config.collect_results {
                    self.results.push(msg.tuple);
                }
            }
        } else {
            self.metrics.stats.intermediate_produced += results.len() as u64;
            for msg in results {
                for (consumer, port) in &consumers {
                    self.metrics.stats.queued_tuples += 1;
                    self.metrics.charge(CostKind::QueueOp, 1);
                    self.scheduler.push(
                        Task {
                            to: *consumer,
                            kind: TaskKind::Data {
                                port: *port,
                                msg: msg.clone(),
                            },
                        },
                        priority,
                    );
                }
            }
        }
        self.slots[from.0].consumers = consumers;
    }

    /// Send feedback emitted by `from` to the producers feeding the named
    /// ports. Feedback addressed to a raw source is dropped (a source has no
    /// production to control).
    fn route_feedback(&mut self, from: OperatorId, feedback: Vec<(Port, jit_types::Feedback)>) {
        for (port, fb) in feedback {
            match self.slots[from.0].inputs.get(port) {
                Some(Input::Operator(producer)) => {
                    match fb.command {
                        FeedbackCommand::Suspend => self.metrics.stats.feedback_suspend += 1,
                        FeedbackCommand::Resume => self.metrics.stats.feedback_resume += 1,
                        FeedbackCommand::Mark => self.metrics.stats.feedback_mark += 1,
                        FeedbackCommand::Unmark => self.metrics.stats.feedback_unmark += 1,
                    }
                    self.scheduler.push(
                        Task {
                            to: *producer,
                            kind: TaskKind::Feedback(fb),
                        },
                        Priority::Control,
                    );
                }
                Some(Input::Source(_)) | None => {
                    // No producer operator to notify; the feedback is simply
                    // dropped, which is always legal.
                }
            }
        }
    }

    /// Refresh the per-operator and queue memory accounting.
    fn sample_memory(&mut self) {
        for (i, slot) in self.slots.iter().enumerate() {
            self.metrics
                .memory
                .set(self.op_mem[i], slot.operator.memory_bytes());
        }
        self.metrics
            .memory
            .set(self.queue_mem, self.scheduler.queued_bytes());
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Results collected so far (empty if `collect_results` is off).
    pub fn results(&self) -> &[Tuple] {
        &self.results
    }

    /// Drain the results collected since the last drain (empty if
    /// `collect_results` is off). Incremental consumers — push-based
    /// sessions, the sharded runtime's result streaming — use this to hand
    /// results onward without holding the whole run in the executor;
    /// [`Executor::finish`] then returns only what was never drained.
    pub fn take_results(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.results)
    }

    /// Total number of final results emitted (counted even when collection
    /// is disabled).
    pub fn results_count(&self) -> u64 {
        self.results_count
    }

    /// Number of temporal-order violations observed at the sinks (should be
    /// zero for a correct execution).
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    /// Application time of the most recent arrival.
    pub fn current_time(&self) -> Timestamp {
        self.current_time
    }

    /// Immutable access to an operator (diagnostics and tests).
    pub fn operator(&self, id: OperatorId) -> &dyn crate::operator::Operator {
        self.slots[id.0].operator.as_ref()
    }

    /// The union of every operator's [`crate::operator::SuppressionDigest`] — the plan's
    /// current suppression knowledge, for cross-pipeline reporting.
    pub fn suppression_digest(&self) -> crate::operator::SuppressionDigest {
        let mut digest = crate::operator::SuppressionDigest::default();
        for slot in &self.slots {
            digest.merge(&slot.operator.suppression_digest());
        }
        digest
    }

    /// Serialise the executor's resumable state: the clock, the sink
    /// bookkeeping, any collected-but-undrained results, and one blob per
    /// operator (validated by name on restore).
    ///
    /// Must be taken between cascades (the scheduler is always drained
    /// then), so there is no in-flight task or feedback to persist. Metrics
    /// are deliberately *not* checkpointed: a restored run restarts its
    /// counters, which keeps cost accounting attributable to the process
    /// that actually paid it.
    pub fn checkpoint(&self) -> Content {
        debug_assert!(
            self.scheduler.is_empty(),
            "checkpoints are taken between cascades"
        );
        Content::Map(vec![
            ("current_time".to_string(), self.current_time.to_content()),
            (
                "last_result_ts".to_string(),
                self.last_result_ts.to_content(),
            ),
            ("results_count".to_string(), self.results_count.to_content()),
            (
                "order_violations".to_string(),
                self.order_violations.to_content(),
            ),
            ("pending_results".to_string(), self.results.to_content()),
            (
                "operators".to_string(),
                Content::Seq(
                    self.slots
                        .iter()
                        .map(|slot| {
                            Content::Map(vec![
                                (
                                    "name".to_string(),
                                    Content::Str(slot.operator.name().to_string()),
                                ),
                                ("state".to_string(), slot.operator.checkpoint()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild the executor's dynamic state from an [`Executor::checkpoint`]
    /// blob. The executor must have been freshly constructed from the same
    /// plan (operator count and names are validated). Results that were
    /// collected but never drained at checkpoint time are reinstated, so the
    /// first `take_results` after a restore returns exactly what the
    /// original session would have returned.
    pub fn restore_checkpoint(&mut self, content: &Content) -> Result<(), serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::expected("object", "Executor"))?;
        let operators = serde::field::<Content>(map, "operators", "Executor")?;
        let operators = operators
            .as_seq()
            .ok_or_else(|| serde::Error::expected("array", "Executor::operators"))?;
        if operators.len() != self.slots.len() {
            return Err(serde::Error::msg(format!(
                "checkpoint has {} operators but the plan has {}",
                operators.len(),
                self.slots.len()
            )));
        }
        for (slot, blob) in self.slots.iter_mut().zip(operators) {
            let entry = blob
                .as_map()
                .ok_or_else(|| serde::Error::expected("object", "operator checkpoint"))?;
            let name: String = serde::field(entry, "name", "operator checkpoint")?;
            if name != slot.operator.name() {
                return Err(serde::Error::msg(format!(
                    "operator mismatch: checkpoint holds `{name}`, plan expects `{}`",
                    slot.operator.name()
                )));
            }
            let state: Content = serde::field(entry, "state", "operator checkpoint")?;
            slot.operator.restore(&state)?;
        }
        self.current_time = serde::field(map, "current_time", "Executor")?;
        self.last_result_ts = serde::field(map, "last_result_ts", "Executor")?;
        self.results_count = serde::field(map, "results_count", "Executor")?;
        self.order_violations = serde::field(map, "order_violations", "Executor")?;
        self.results = serde::field(map, "pending_results", "Executor")?;
        self.sample_memory();
        Ok(())
    }

    /// Finish the run: flush suppressed production, freeze the wall clock
    /// and return results + metrics.
    ///
    /// The returned snapshot carries both total figures (including the
    /// end-of-stream flush) and steady-state figures captured before the
    /// flush (`steady_cost_units`, `steady_peak_memory_bytes`) — the
    /// latter are what an unbounded stream would keep paying and what the
    /// experiment harness reports.
    pub fn finish(mut self) -> (Vec<Tuple>, MetricsSnapshot) {
        self.sample_memory();
        let steady = self.metrics.snapshot();
        self.flush_suspended();
        self.sample_memory();
        let mut snapshot = self.metrics.finish();
        snapshot.steady_cost_units = steady.cost_units;
        snapshot.steady_peak_memory_bytes = steady.peak_memory_bytes;
        (self.results, snapshot)
    }

    /// End-of-stream flush: ask every operator to release the production it
    /// is still withholding (suspended tuples, Ø-buffered inputs) and run
    /// the resulting cascades, repeating until the plan is quiescent.
    ///
    /// Regenerated intermediates may themselves trigger fresh suspensions
    /// downstream mid-flush, so one pass is not always enough; every
    /// tuple pair is regenerated at most once (the operators' presence
    /// bookkeeping guarantees that), which bounds the number of productive
    /// rounds. The iteration cap is a defensive backstop only.
    fn flush_suspended(&mut self) {
        const MAX_ROUNDS: usize = 64;
        let now = self.current_time;
        for _ in 0..MAX_ROUNDS {
            let mut quiescent = true;
            for idx in 0..self.slots.len() {
                let outcome = {
                    let slot = &mut self.slots[idx];
                    let mut ctx = OpContext::new(now, &mut self.metrics);
                    slot.operator.flush(&mut ctx)
                };
                if !outcome.resumed.is_empty() || !outcome.propagate.is_empty() {
                    quiescent = false;
                }
                self.route_results(OperatorId(idx), outcome.resumed, Priority::Resumed);
                self.route_feedback(OperatorId(idx), outcome.propagate);
                self.run_cascade();
            }
            if quiescent {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Operator, OperatorOutput, LEFT};
    use crate::plan::PlanBuilder;
    use jit_types::{Feedback, SourceSet, Value};

    /// Forwards every input; counts feedback received.
    struct Forward {
        name: String,
        feedback_seen: usize,
        suspended: bool,
    }

    impl Forward {
        fn boxed(name: &str) -> Box<dyn Operator> {
            Box::new(Forward {
                name: name.to_string(),
                feedback_seen: 0,
                suspended: false,
            })
        }
    }

    impl Operator for Forward {
        fn name(&self) -> &str {
            &self.name
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::first_n(1)
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn handle_feedback(
            &mut self,
            _fb: &Feedback,
            _ctx: &mut OpContext<'_>,
        ) -> crate::operator::FeedbackOutcome {
            self.feedback_seen += 1;
            self.suspended = true;
            crate::operator::FeedbackOutcome::empty()
        }
        fn memory_bytes(&self) -> usize {
            64
        }
        fn is_suspended(&self) -> bool {
            self.suspended
        }
    }

    /// Sends a suspension feedback upstream for every input it sees.
    struct Complainer {
        name: String,
    }

    impl Operator for Complainer {
        fn name(&self) -> &str {
            &self.name
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::first_n(1)
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput {
                results: vec![msg.clone()],
                columnar: None,
                feedback: vec![(LEFT, Feedback::suspend(vec![msg.tuple.clone()]))],
            }
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    fn base(source: u16, seq: u64, ts: u64) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::int(1)],
        ))
    }

    #[test]
    fn single_operator_chain_delivers_to_sink() {
        let mut b = PlanBuilder::new();
        let first = b.add_operator(Forward::boxed("first"), vec![Input::Source(SourceId(0))]);
        let _second = b.add_operator(Forward::boxed("second"), vec![Input::Operator(first)]);
        let mut exec = Executor::with_defaults(b.build().unwrap());

        exec.ingest(SourceId(0), base(0, 0, 10));
        exec.ingest(SourceId(0), base(0, 1, 20));

        assert_eq!(exec.results_count(), 2);
        assert_eq!(exec.results().len(), 2);
        assert_eq!(exec.metrics().stats.tuples_arrived, 2);
        // first's outputs are intermediate, second's are final
        assert_eq!(exec.metrics().stats.intermediate_produced, 2);
        assert_eq!(exec.metrics().stats.results_emitted, 2);
        assert_eq!(exec.order_violations(), 0);
        assert_eq!(exec.current_time(), Timestamp::from_millis(20));
        let (results, snapshot) = exec.finish();
        assert_eq!(results.len(), 2);
        assert!(snapshot.cost_units > 0);
        assert!(snapshot.peak_memory_bytes >= 64);
    }

    #[test]
    fn feedback_is_routed_to_the_producer() {
        let mut b = PlanBuilder::new();
        let producer = b.add_operator(Forward::boxed("producer"), vec![Input::Source(SourceId(0))]);
        let _consumer = b.add_operator(
            Box::new(Complainer {
                name: "consumer".into(),
            }),
            vec![Input::Operator(producer)],
        );
        let mut exec = Executor::with_defaults(b.build().unwrap());
        exec.ingest(SourceId(0), base(0, 0, 10));
        assert_eq!(exec.metrics().stats.feedback_suspend, 1);
        assert!(exec.operator(producer).is_suspended());
    }

    #[test]
    fn feedback_to_a_source_is_dropped() {
        let mut b = PlanBuilder::new();
        let _only = b.add_operator(
            Box::new(Complainer {
                name: "consumer".into(),
            }),
            vec![Input::Source(SourceId(0))],
        );
        let mut exec = Executor::with_defaults(b.build().unwrap());
        exec.ingest(SourceId(0), base(0, 0, 10));
        // The feedback had nowhere to go but the execution completes cleanly.
        assert_eq!(exec.metrics().stats.feedback_suspend, 0);
        assert_eq!(exec.results_count(), 1);
    }

    #[test]
    fn results_can_be_left_uncollected() {
        let mut b = PlanBuilder::new();
        b.add_operator(Forward::boxed("only"), vec![Input::Source(SourceId(0))]);
        let mut exec = Executor::new(
            b.build().unwrap(),
            ExecutorConfig {
                collect_results: false,
                check_temporal_order: true,
            },
        );
        exec.ingest(SourceId(0), base(0, 0, 10));
        assert_eq!(exec.results_count(), 1);
        assert!(exec.results().is_empty());
    }

    #[test]
    fn unsubscribed_source_is_ignored() {
        let mut b = PlanBuilder::new();
        b.add_operator(Forward::boxed("only"), vec![Input::Source(SourceId(0))]);
        let mut exec = Executor::with_defaults(b.build().unwrap());
        exec.ingest(SourceId(5), base(5, 0, 10));
        assert_eq!(exec.results_count(), 0);
        assert_eq!(exec.metrics().stats.tuples_arrived, 1);
    }

    fn keyed(source: u16, seq: u64, ts: u64, key: i64) -> Arc<BaseTuple> {
        Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(ts),
            vec![Value::int(key)],
        ))
    }

    fn ref_join_exec() -> Executor {
        use jit_types::{Duration, PredicateSet, Window};
        let mut b = PlanBuilder::new();
        b.add_operator(
            Box::new(crate::join::RefJoinOperator::new(
                "A⋈B",
                SourceSet::single(SourceId(0)),
                SourceSet::single(SourceId(1)),
                PredicateSet::clique(2),
                Window::new(Duration::from_secs(2)),
            )),
            vec![Input::Source(SourceId(0)), Input::Source(SourceId(1))],
        );
        Executor::with_defaults(b.build().unwrap())
    }

    /// The satellite contract pinned for the batch probe kernel: replaying
    /// the same arrivals through `ingest_block` yields byte-identical
    /// results and identical workload counters (`probe_pairs` in
    /// particular is charged once per candidate examined, never twice).
    #[test]
    fn block_ingest_matches_tuple_ingest_results_and_counters() {
        let arrivals: Vec<(u16, u64, u64, i64)> = (0..200u64)
            .map(|i| ((i % 2) as u16, i, i * 37, (i % 5) as i64))
            .collect();

        let mut tuple_exec = ref_join_exec();
        for &(s, seq, ts, key) in &arrivals {
            tuple_exec.ingest(SourceId(s), keyed(s, seq, ts, key));
        }

        let mut batch_exec = ref_join_exec();
        let mut builder = jit_types::BlockBuilder::new();
        for chunk in arrivals.chunks(16) {
            for &(s, seq, ts, key) in chunk {
                builder.push(SourceId(s), keyed(s, seq, ts, key));
            }
            let block = builder.finish();
            batch_exec.ingest_block(&block);
        }

        assert_eq!(tuple_exec.results(), batch_exec.results());
        assert!(!tuple_exec.results().is_empty());
        let t = tuple_exec.metrics().stats;
        let b = batch_exec.metrics().stats;
        assert_eq!(t.probe_pairs, b.probe_pairs);
        assert_eq!(t.predicate_evals, b.predicate_evals);
        assert_eq!(t.purged_tuples, b.purged_tuples);
        assert!(t.purged_tuples > 0, "workload must exercise purging");
        assert_eq!(t.state_insertions, b.state_insertions);
        assert_eq!(t.state_probes, b.state_probes);
        assert_eq!(t.results_emitted, b.results_emitted);
        assert_eq!(t.tuples_arrived, b.tuples_arrived);
        assert_eq!(batch_exec.order_violations(), 0);
        // The point of the batch path: the per-arrival leaf hop is gone.
        assert!(b.tasks_executed < t.tasks_executed);
        assert!(b.queued_tuples < t.queued_tuples);
    }

    #[test]
    fn block_ingest_applies_selection_mask() {
        use jit_types::{ColumnRef, FilterPredicate};
        let build = || {
            let mut b = PlanBuilder::new();
            b.add_operator(
                Box::new(crate::selection::SelectionOperator::new(
                    "σ",
                    FilterPredicate::gt(ColumnRef::new(SourceId(0), 0), 2),
                    SourceSet::single(SourceId(0)),
                )),
                vec![Input::Source(SourceId(0))],
            );
            Executor::with_defaults(b.build().unwrap())
        };
        let mut tuple_exec = build();
        let mut batch_exec = build();
        let mut builder = jit_types::BlockBuilder::new();
        for i in 0..10u64 {
            tuple_exec.ingest(SourceId(0), keyed(0, i, i * 10, (i % 5) as i64));
            builder.push(SourceId(0), keyed(0, i, i * 10, (i % 5) as i64));
        }
        batch_exec.ingest_block(&builder.finish());
        // Values 3 and 4 pass in each cycle of 5.
        assert_eq!(tuple_exec.results_count(), 4);
        assert_eq!(tuple_exec.results(), batch_exec.results());
        assert_eq!(
            tuple_exec.metrics().stats.predicate_evals,
            batch_exec.metrics().stats.predicate_evals
        );
        assert_eq!(
            tuple_exec.metrics().stats.results_emitted,
            batch_exec.metrics().stats.results_emitted
        );
    }

    #[test]
    fn block_ingest_falls_back_for_multi_subscriber_sources() {
        let build = || {
            let mut b = PlanBuilder::new();
            b.add_operator(Forward::boxed("one"), vec![Input::Source(SourceId(0))]);
            b.add_operator(Forward::boxed("two"), vec![Input::Source(SourceId(0))]);
            Executor::with_defaults(b.build().unwrap())
        };
        let mut tuple_exec = build();
        let mut batch_exec = build();
        let mut builder = jit_types::BlockBuilder::new();
        for i in 0..6u64 {
            tuple_exec.ingest(SourceId(0), base(0, i, i * 10));
            builder.push(SourceId(0), base(0, i, i * 10));
        }
        batch_exec.ingest_block(&builder.finish());
        // The fallback is the tuple path verbatim: every counter matches,
        // including the scheduler bookkeeping.
        assert_eq!(tuple_exec.results(), batch_exec.results());
        let t = tuple_exec.metrics().stats;
        let b = batch_exec.metrics().stats;
        assert_eq!(t.tasks_executed, b.tasks_executed);
        assert_eq!(t.queued_tuples, b.queued_tuples);
        assert_eq!(t.results_emitted, b.results_emitted);
    }
}
