//! The operator abstraction.
//!
//! Operators are the nodes of an execution plan. They receive
//! [`DataMessage`]s on numbered input ports, may produce result messages for
//! their consumers, and may send [`Feedback`] to the producer feeding one of
//! their ports. Producers in turn handle feedback via
//! [`Operator::handle_feedback`], possibly emitting *resumed* results and
//! propagating feedback further upstream (Section III-C of the paper).

use jit_metrics::RunMetrics;
use jit_types::{
    BaseTuple, Batch, BitMask, ColumnRef, Feedback, Signature, SourceId, SourceSet, Timestamp,
    Tuple, Value,
};
use serde::Content;
use std::fmt;
use std::sync::Arc;

/// Index of an operator input port. Binary operators use [`LEFT`] and
/// [`RIGHT`]; n-ary operators (e.g. the Eddy) use ports `0..n`.
pub type Port = usize;

/// The left input port of a binary operator.
pub const LEFT: Port = 0;
/// The right input port of a binary operator.
pub const RIGHT: Port = 1;

/// Identifier of an operator within an [`crate::plan::ExecutablePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperatorId(pub usize);

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Op{}", self.0)
    }
}

/// A tuple flowing downstream from a producer to a consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMessage {
    /// The (possibly composite) tuple.
    pub tuple: Tuple,
    /// Mark-result flag: set when the tuple is a super-tuple of a sub-tuple
    /// named in a `<mark, …>` feedback (Type II MNS handling, Section IV-B).
    pub marked: bool,
}

impl DataMessage {
    /// An unmarked data message.
    pub fn new(tuple: Tuple) -> Self {
        DataMessage {
            tuple,
            marked: false,
        }
    }

    /// A marked data message.
    pub fn marked(tuple: Tuple) -> Self {
        DataMessage {
            tuple,
            marked: true,
        }
    }

    /// Approximate footprint in bytes (for queue accounting).
    pub fn size_bytes(&self) -> usize {
        self.tuple.size_bytes() + std::mem::size_of::<bool>()
    }
}

/// Columnar join results from one operator call: instead of one row
/// [`Tuple`] allocation per match (a sorted `Arc<[Arc<BaseTuple>]>` each),
/// matches accumulate into per-source component columns. Every result of a
/// given join operator covers the same source set, so the block is
/// rectangular: `columns[c][r]` is row `r`'s component from `sources[c]`.
///
/// Rows are only re-materialised into [`Tuple`]s when a consumer actually
/// needs them ([`ResultBlock::row_message`], via the cheap
/// [`Tuple::from_sorted_parts`] — the columns are already in source order);
/// a sink that merely counts and order-checks results never rowifies.
#[derive(Debug, Default, Clone)]
pub struct ResultBlock {
    /// Covered sources, ascending; fixed by the first pushed match.
    sources: Vec<SourceId>,
    /// One component column per source, all of equal length.
    columns: Vec<Vec<Arc<BaseTuple>>>,
    /// Per-row result timestamp (max component timestamp).
    ts: Vec<Timestamp>,
    /// Per-row mark flag.
    marked: Vec<bool>,
}

impl ResultBlock {
    /// An empty block.
    pub fn new() -> Self {
        ResultBlock::default()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Append the join of two tuples with disjoint source coverage — the
    /// columnar counterpart of [`Tuple::join`] (components distributed to
    /// their source columns; no per-row sort, no per-row `Arc` slice).
    pub fn push_join(&mut self, a: &Tuple, b: &Tuple, marked: bool) {
        debug_assert!(a.sources().is_disjoint(b.sources()));
        if self.sources.is_empty() && self.columns.is_empty() {
            // First match fixes the layout: merge the two sorted part lists.
            let mut ai = a.parts().iter().peekable();
            let mut bi = b.parts().iter().peekable();
            while ai.peek().is_some() || bi.peek().is_some() {
                let from_a = match (ai.peek(), bi.peek()) {
                    (Some(x), Some(y)) => x.source < y.source,
                    (Some(_), None) => true,
                    _ => false,
                };
                let part = if from_a {
                    // INVARIANT: from_a is true only when ai peeked Some.
                    ai.next().expect("peeked")
                } else {
                    // INVARIANT: the loop condition plus !from_a imply bi peeked Some.
                    bi.next().expect("peeked")
                };
                self.sources.push(part.source);
                self.columns.push(vec![part.clone()]);
            }
        } else {
            let mut ai = a.parts().iter().peekable();
            let mut bi = b.parts().iter().peekable();
            for (source, column) in self.sources.iter().zip(&mut self.columns) {
                let part = if ai.peek().is_some_and(|p| p.source == *source) {
                    // INVARIANT: the branch condition peeked Some on ai.
                    ai.next().expect("peeked")
                } else if bi.peek().is_some_and(|p| p.source == *source) {
                    // INVARIANT: the branch condition peeked Some on bi.
                    bi.next().expect("peeked")
                } else {
                    // INVARIANT: join results only combine blocks covering the
                    // operator's schema; a missing source is a planner bug, so stop loudly.
                    panic!("match does not cover block source {source}");
                };
                column.push(part.clone());
            }
            debug_assert!(ai.next().is_none() && bi.next().is_none());
        }
        self.ts.push(a.ts().max(b.ts()));
        self.marked.push(marked);
    }

    /// Row `r`'s result timestamp.
    pub fn row_ts(&self, r: usize) -> Timestamp {
        self.ts[r]
    }

    /// Row `r`'s mark flag.
    pub fn row_marked(&self, r: usize) -> bool {
        self.marked[r]
    }

    /// Materialise row `r` as a [`DataMessage`] (the row/column boundary:
    /// called only when a consumer needs an actual tuple).
    pub fn row_message(&self, r: usize) -> DataMessage {
        let parts: Vec<Arc<BaseTuple>> = self.columns.iter().map(|c| c[r].clone()).collect();
        DataMessage {
            tuple: Tuple::from_sorted_parts(parts),
            marked: self.marked[r],
        }
    }
}

/// Everything an operator returns from processing one input message.
#[derive(Debug, Default, Clone)]
pub struct OperatorOutput {
    /// Result messages to forward to the operator's consumers.
    pub results: Vec<DataMessage>,
    /// Columnar results (see [`ResultBlock`]); routed after `results`.
    /// Operators use one representation per call, never both.
    pub columnar: Option<ResultBlock>,
    /// Feedback to send to the producer feeding the given port.
    pub feedback: Vec<(Port, Feedback)>,
}

impl OperatorOutput {
    /// No results, no feedback.
    pub fn empty() -> Self {
        OperatorOutput::default()
    }

    /// Only results.
    pub fn with_results(results: Vec<DataMessage>) -> Self {
        OperatorOutput {
            results,
            columnar: None,
            feedback: Vec::new(),
        }
    }

    /// Only columnar results (empty blocks are dropped to `None`).
    pub fn with_columnar(block: ResultBlock) -> Self {
        OperatorOutput {
            results: Vec::new(),
            columnar: (!block.is_empty()).then_some(block),
            feedback: Vec::new(),
        }
    }

    /// Is there nothing to deliver?
    pub fn is_empty(&self) -> bool {
        self.results.is_empty() && self.columnar.is_none() && self.feedback.is_empty()
    }

    /// Total number of result rows (row and columnar).
    pub fn num_results(&self) -> usize {
        self.results.len() + self.columnar.as_ref().map_or(0, ResultBlock::len)
    }

    /// All result rows as materialised messages, in routing order — the
    /// row view for callers (and tests) that need actual tuples.
    pub fn result_messages(&self) -> Vec<DataMessage> {
        let mut out = self.results.clone();
        if let Some(block) = &self.columnar {
            out.extend((0..block.len()).map(|r| block.row_message(r)));
        }
        out
    }
}

/// Everything a producer returns from handling a feedback message.
#[derive(Debug, Default, Clone)]
pub struct FeedbackOutcome {
    /// Super-tuples produced in response to a resumption, to be delivered to
    /// the operator's consumers ahead of regular work.
    pub resumed: Vec<DataMessage>,
    /// Feedback to propagate to the operators feeding the given ports
    /// (Section III-C: "an operator always propagates a feedback before
    /// handling it").
    pub propagate: Vec<(Port, Feedback)>,
}

impl FeedbackOutcome {
    /// Nothing to do.
    pub fn empty() -> Self {
        FeedbackOutcome::default()
    }

    /// Is there nothing to deliver?
    pub fn is_empty(&self) -> bool {
        self.resumed.is_empty() && self.propagate.is_empty()
    }
}

/// A portable summary of the suppression knowledge an operator (or a whole
/// plan) has accumulated: the signatures of the minimal non-demanded
/// sub-tuples it is currently capturing by similarity.
///
/// The digest is *observational*: it lets a multi-query serving tier see
/// which value regions one query's JIT machinery has already learned to be
/// unproductive and compare that against its sibling queries
/// ([`SuppressionDigest::overlap`]) — cross-pollination reporting. It is
/// never used to drop deliveries: each pipeline's own feedback loop remains
/// the only authority over what it suppresses, so sharing the digest cannot
/// change any query's results.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SuppressionDigest {
    /// Distinct `(signature columns, signature)` pairs under similarity
    /// capture, sorted and deduplicated.
    pub signatures: Vec<(Vec<ColumnRef>, Signature)>,
    /// Total number of blacklist entries backing the digest (including
    /// entries without a similarity signature).
    pub entries: usize,
}

impl SuppressionDigest {
    /// No suppression knowledge.
    pub fn new() -> Self {
        SuppressionDigest::default()
    }

    /// Is there nothing in the digest?
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty() && self.entries == 0
    }

    /// Record one blacklist entry. Entries without signature columns count
    /// toward [`SuppressionDigest::entries`] but contribute no signature
    /// (they capture exact super-tuples only, which is not transferable
    /// knowledge).
    pub fn add(&mut self, columns: Vec<ColumnRef>, signature: Signature) {
        self.entries += 1;
        if !columns.is_empty() {
            self.signatures.push((columns, signature));
            self.normalize();
        }
    }

    /// Fold another digest into this one.
    pub fn merge(&mut self, other: &SuppressionDigest) {
        self.entries += other.entries;
        self.signatures.extend(other.signatures.iter().cloned());
        self.normalize();
    }

    /// Number of `(columns, signature)` pairs present in both digests — the
    /// suppression knowledge two pipelines share.
    pub fn overlap(&self, other: &SuppressionDigest) -> usize {
        self.signatures
            .iter()
            .filter(|s| other.signatures.binary_search_by(|o| cmp_sig(o, s)).is_ok())
            .count()
    }

    fn normalize(&mut self) {
        self.signatures.sort_by(cmp_sig);
        self.signatures.dedup();
    }
}

fn cmp_sig(a: &(Vec<ColumnRef>, Signature), b: &(Vec<ColumnRef>, Signature)) -> std::cmp::Ordering {
    (&a.0, &a.1 .0).cmp(&(&b.0, &b.1 .0))
}

/// A per-batch acceleration structure returned by
/// [`Operator::prepare_batch`]: the result of one vectorized pass over a
/// leaf [`Batch`] that the executor then consumes while replaying the rows
/// in arrival order.
///
/// Batching never changes results or metrics-relevant counters — a prep is
/// purely a cheaper way to do per-row work that the columnar layout lets
/// the operator front-load:
///
/// * [`BatchPrep::Mask`] — a selection bitmap, packed 64 rows per word
///   ([`BitMask`]). The executor forwards row `i` to the operator's
///   consumers iff bit `i` is set, without dispatching a per-row `process`
///   call (the predicate charges were paid in `prepare_batch`). Masked-out
///   rows are simply not forwarded; the batch itself is never dropped.
/// * [`BatchPrep::Probe`] — pre-extracted hash-probe keys for a join. The
///   executor still calls [`Operator::process_batch_row`] per row, which
///   probes with the ready-made key slice instead of re-assembling a
///   `Vec<Value>` key per tuple.
#[derive(Debug, Clone)]
pub enum BatchPrep {
    /// Selection bitmap over the batch rows (see above); consumed by the
    /// executor directly.
    Mask(BitMask),
    /// Pre-extracted probe keys; consumed by
    /// [`Operator::process_batch_row`].
    Probe(ProbePrep),
}

/// Pre-extracted hash-probe keys for one batch (see [`BatchPrep::Probe`]).
///
/// The keys live in one flat row-major arena — row `i`'s key is
/// `keys[i·arity .. (i+1)·arity]` when `valid[i]` — so a batch pays one
/// allocation for all of its keys instead of one `Vec<Value>` per tuple.
#[derive(Debug, Clone)]
pub struct ProbePrep {
    /// Row-major key arena (`len == rows · arity`).
    pub keys: Vec<Value>,
    /// Per-row key validity; an invalid row (a probe column was missing)
    /// falls back to the scan path, exactly as in tuple mode.
    pub valid: Vec<bool>,
    /// Number of key columns; `0` means no usable key (scan fallback for
    /// every row) and leaves `keys`/`valid` empty.
    pub arity: usize,
    /// Both join states were proven to have nothing to purge for the whole
    /// block (see `RefJoinOperator::prepare_batch`), so the per-row purge
    /// calls — which would each remove zero tuples and charge zero cost —
    /// are skipped.
    pub skip_purge: bool,
}

impl ProbePrep {
    /// The pre-extracted key of `row`, or `None` when the row must fall
    /// back to the scan path.
    pub fn key(&self, row: usize) -> Option<&[Value]> {
        if self.arity == 0 || !self.valid[row] {
            return None;
        }
        Some(&self.keys[row * self.arity..(row + 1) * self.arity])
    }
}

/// Per-call execution context handed to operators: the current application
/// time and mutable access to the run's metrics.
pub struct OpContext<'a> {
    /// Application time of the arrival that started the current cascade.
    pub now: Timestamp,
    /// Counters, cost model and memory accounting for the run.
    pub metrics: &'a mut RunMetrics,
}

impl<'a> OpContext<'a> {
    /// Create a context for the given instant.
    pub fn new(now: Timestamp, metrics: &'a mut RunMetrics) -> Self {
        OpContext { now, metrics }
    }
}

/// A plan operator.
///
/// Implementations must be deterministic: the same sequence of `process` and
/// `handle_feedback` calls must yield the same outputs, so REF/JIT
/// comparisons and property tests are reproducible.
///
/// `Send` is a supertrait so that a fully built [`crate::plan::ExecutablePlan`]
/// can be moved onto a worker thread — the sharded runtime builds every
/// shard's plan on the caller's thread and ships each one to its shard.
pub trait Operator: Send {
    /// Human-readable name, e.g. `"A⋈B"`.
    fn name(&self) -> &str;

    /// The set of sources covered by this operator's output tuples.
    fn output_schema(&self) -> SourceSet;

    /// Number of input ports.
    fn num_ports(&self) -> usize;

    /// Process one data message arriving on `port`.
    fn process(&mut self, port: Port, msg: &DataMessage, ctx: &mut OpContext<'_>)
        -> OperatorOutput;

    /// Vectorized pass over a leaf [`Batch`] about to be replayed row by
    /// row (the batch data plane's kernel hook).
    ///
    /// Called once per batch by `Executor::ingest_block` before any of the
    /// batch's rows are delivered. `ctx.now` is an *upper bound* on the
    /// executor clock for the whole block (not the current arrival time),
    /// and `block_min_ts` is the earliest row timestamp across the block —
    /// together they let a stateful operator prove that no purge during the
    /// block can remove anything. Returning `None` (the default) keeps the
    /// exact tuple-at-a-time path for every row.
    fn prepare_batch(
        &mut self,
        port: Port,
        batch: &Batch,
        block_min_ts: Timestamp,
        ctx: &mut OpContext<'_>,
    ) -> Option<BatchPrep> {
        let _ = (port, batch, block_min_ts, ctx);
        None
    }

    /// Process row `row` of a batch for which [`Operator::prepare_batch`]
    /// returned `prep`. `ctx.now` is the regular per-arrival clock, and the
    /// output contract is identical to [`Operator::process`] — the prep is
    /// only a cheaper way to arrive at the same results and counters.
    fn process_batch_row(
        &mut self,
        port: Port,
        row: usize,
        prep: &BatchPrep,
        msg: &DataMessage,
        ctx: &mut OpContext<'_>,
    ) -> OperatorOutput {
        let _ = (row, prep);
        self.process(port, msg, ctx)
    }

    /// Handle a feedback message sent by a downstream consumer.
    ///
    /// The default implementation ignores feedback, which is always legal:
    /// Section III-A notes a producer "may decide to ignore the message and
    /// keep producing NPRs". The REF baseline relies on this default.
    fn handle_feedback(&mut self, fb: &Feedback, ctx: &mut OpContext<'_>) -> FeedbackOutcome {
        let _ = (fb, ctx);
        FeedbackOutcome::empty()
    }

    /// Current analytical memory footprint of all containers held by the
    /// operator (states, MNS buffers, blacklists, …). Must be O(1).
    fn memory_bytes(&self) -> usize;

    /// A digest of the suppression knowledge this operator currently holds
    /// (see [`SuppressionDigest`]). The default — correct for every operator
    /// without a blacklist — is empty.
    fn suppression_digest(&self) -> SuppressionDigest {
        SuppressionDigest::default()
    }

    /// Is the operator currently suspended (used by the DOE baseline and by
    /// scheduling diagnostics)?
    fn is_suspended(&self) -> bool {
        false
    }

    /// End-of-stream flush: release every suppressed production the operator
    /// is still holding back (suspended tuples, Ø-buffered inputs), exactly
    /// as if every pending suspension had been resumed.
    ///
    /// Called by the executor when the input is exhausted — the streaming
    /// analogue of a watermark/close: suppressed-but-still-demandable
    /// results must be materialised before the run's output is final. On an
    /// unbounded stream the same release happens incrementally through
    /// MNS-expiry resumption; the flush is what bounds the delay on a
    /// *finite* trace whose end arrives before the window does.
    ///
    /// The default is a no-op: operators that never withhold production
    /// (the REF baseline, selections) have nothing to flush.
    fn flush(&mut self, ctx: &mut OpContext<'_>) -> FeedbackOutcome {
        let _ = ctx;
        FeedbackOutcome::empty()
    }

    /// Watermark advance: the executor's clock has just moved forward to
    /// `ctx.now` *without* a data arrival (the watermark-clock regime of
    /// bounded-disorder execution). Operators whose time-driven work is
    /// normally piggybacked on arrivals — JIT's MNS-expiry resumption in
    /// particular — perform it here, so suppressed productions are released
    /// at watermark boundaries rather than waiting for the next tuple.
    ///
    /// The default is a no-op, which is sound for operators whose only
    /// time-driven work is state purging: purge-at-probe is based on tuple
    /// timestamps and every probe re-checks the window, so deferring the
    /// purge to the next arrival changes no results.
    fn on_watermark(&mut self, ctx: &mut OpContext<'_>) -> OperatorOutput {
        let _ = ctx;
        OperatorOutput::empty()
    }

    /// Serialise the operator's resumable dynamic state (window contents,
    /// buffers, blacklists, …) as a [`Content`] blob for a checkpoint.
    ///
    /// Static configuration (schemas, predicates, windows) is *not*
    /// serialised — a restore reconstructs the plan from the query and then
    /// replays each operator's blob into the freshly built instance. The
    /// default returns [`Content::Null`], correct for stateless operators.
    fn checkpoint(&self) -> Content {
        Content::Null
    }

    /// Rebuild the operator's dynamic state from a blob produced by
    /// [`Operator::checkpoint`] on an identically configured instance.
    ///
    /// The default accepts only [`Content::Null`] (the stateless checkpoint)
    /// and rejects anything else — a stateful blob reaching a stateless
    /// operator means the checkpoint and the plan disagree.
    fn restore(&mut self, state: &Content) -> Result<(), serde::Error> {
        match state {
            Content::Null => Ok(()),
            _ => Err(serde::Error::msg(format!(
                "operator `{}` holds no dynamic state but the checkpoint has some",
                self.name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_types::{BaseTuple, SourceId, Value};
    use std::sync::Arc;

    fn tuple(source: u16, seq: u64) -> Tuple {
        Tuple::from_base(Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_millis(seq),
            vec![Value::int(1)],
        )))
    }

    /// A trivial pass-through operator used to exercise the trait defaults.
    struct PassThrough {
        name: String,
    }

    impl Operator for PassThrough {
        fn name(&self) -> &str {
            &self.name
        }
        fn output_schema(&self) -> SourceSet {
            SourceSet::single(SourceId(0))
        }
        fn num_ports(&self) -> usize {
            1
        }
        fn process(
            &mut self,
            _port: Port,
            msg: &DataMessage,
            _ctx: &mut OpContext<'_>,
        ) -> OperatorOutput {
            OperatorOutput::with_results(vec![msg.clone()])
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn data_message_constructors() {
        let t = tuple(0, 1);
        let plain = DataMessage::new(t.clone());
        let marked = DataMessage::marked(t);
        assert!(!plain.marked);
        assert!(marked.marked);
        assert!(plain.size_bytes() > 0);
    }

    #[test]
    fn output_and_outcome_emptiness() {
        assert!(OperatorOutput::empty().is_empty());
        assert!(FeedbackOutcome::empty().is_empty());
        let out = OperatorOutput::with_results(vec![DataMessage::new(tuple(0, 1))]);
        assert!(!out.is_empty());
        let outcome = FeedbackOutcome {
            resumed: vec![DataMessage::new(tuple(0, 1))],
            propagate: Vec::new(),
        };
        assert!(!outcome.is_empty());
    }

    #[test]
    fn default_feedback_handling_is_a_noop() {
        let mut op = PassThrough {
            name: "pass".into(),
        };
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::ZERO, &mut metrics);
        let outcome = op.handle_feedback(&Feedback::suspend(vec![tuple(0, 1)]), &mut ctx);
        assert!(outcome.is_empty());
        assert!(!op.is_suspended());
    }

    #[test]
    fn pass_through_processes() {
        let mut op = PassThrough {
            name: "pass".into(),
        };
        let mut metrics = RunMetrics::new();
        let mut ctx = OpContext::new(Timestamp::from_millis(5), &mut metrics);
        let out = op.process(LEFT, &DataMessage::new(tuple(0, 3)), &mut ctx);
        assert_eq!(out.results.len(), 1);
        assert_eq!(ctx.now, Timestamp::from_millis(5));
        assert_eq!(op.name(), "pass");
        assert_eq!(op.num_ports(), 1);
    }

    #[test]
    fn operator_id_display() {
        assert_eq!(OperatorId(3).to_string(), "Op3");
    }

    #[test]
    fn suppression_digest_merges_and_overlaps() {
        use jit_types::SourceId;
        let col = |c: u16| ColumnRef::new(SourceId(0), c);
        let sig = |c: u16, v: i64| Signature(vec![(col(c), Value::int(v))]);

        let mut a = SuppressionDigest::new();
        assert!(a.is_empty());
        a.add(vec![col(0)], sig(0, 1));
        a.add(vec![col(0)], sig(0, 1)); // duplicate signature, second entry
        a.add(vec![], Signature::default()); // exact-capture entry: no signature
        assert_eq!(a.entries, 3);
        assert_eq!(a.signatures.len(), 1);

        let mut b = SuppressionDigest::new();
        b.add(vec![col(0)], sig(0, 1));
        b.add(vec![col(1)], sig(1, 2));
        assert_eq!(a.overlap(&b), 1);
        assert_eq!(b.overlap(&a), 1);

        a.merge(&b);
        assert_eq!(a.entries, 5);
        assert_eq!(a.signatures.len(), 2);
        assert_eq!(a.overlap(&b), 2);
        // The trait default reports no knowledge.
        let op = PassThrough {
            name: "pass".into(),
        };
        assert!(op.suppression_digest().is_empty());
    }
}
