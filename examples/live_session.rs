//! Live ingestion: the push-based `Engine`/`Session` API end to end.
//!
//! ```text
//! cargo run --example live_session --release
//! ```
//!
//! The motivating scenario of the paper's introduction — "an abnormal
//! combination of readings from close-by humidity, light and temperature
//! sensors may trigger the alarm in a factory" — but served the way a
//! production system would: a long-lived engine is built once from a CQL
//! query, sensor readings are *pushed* into a session as they arrive, and
//! alarms plus live metrics are *polled* out mid-stream instead of waiting
//! for a batch run to end.
//!
//! The same builder then targets every core: one `.sharded(...)` call moves
//! the identical query onto four hash-partitioned workers, and the engine
//! proves the switch is safe — the query joins every stream on `zone`, so
//! the static partitionability analysis accepts it. A query that does NOT
//! reduce to key equality is rejected at build time with a typed error
//! (shown at the end) instead of silently losing alarms.

use jit_dsms::prelude::*;
use std::sync::Arc;

/// The factory-monitoring query: three sensor streams joined on the zone
/// identifier over a 20-minute window (longer than the 10-minute shift
/// monitored below, so no reading expires and JIT's result set matches
/// REF's *exactly* — which is what lets the example assert byte-for-byte
/// agreement between the two backends). Every predicate is an equality on
/// column 0 of each stream, which is exactly what makes hash-sharding
/// lossless.
const ALARM_QUERY: &str = "SELECT * FROM \
    humidity [RANGE 20 minutes], light [RANGE 20 minutes], temperature [RANGE 20 minutes] \
    WHERE humidity.zone = light.zone AND light.zone = temperature.zone";

const ZONES: u64 = 300;
const READINGS: u64 = 1_800; // 10 minutes at 3 readings/second

/// Deterministic reading stream: each second one reading per sensor, zones
/// drawn from a small LCG (no RNG dependency needed in an example).
fn readings() -> Vec<ArrivalEvent> {
    let mut state = 2008_u64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % ZONES
    };
    (0..READINGS)
        .map(|i| {
            let ts = Timestamp::from_millis(i * 333); // ~3 readings/second
            let source = SourceId((i % 3) as u16);
            let zone = 1 + lcg() as i64;
            ArrivalEvent {
                ts,
                source,
                tuple: Arc::new(BaseTuple::new(source, i, ts, vec![Value::int(zone)])),
            }
        })
        .collect()
}

fn main() {
    let builder = Engine::builder()
        .query_cql(ALARM_QUERY)
        .mode(ExecutionMode::Jit(JitPolicy::full()));

    // ---- Live single-threaded session: push readings, poll alarms. ----
    let engine = builder.clone().build().expect("the alarm query builds");
    let mut session = engine.session().expect("session opens");
    println!("factory monitoring online: humidity ⋈ light ⋈ temperature by zone\n");

    let stream = readings();
    let mut alarms: Vec<Tuple> = Vec::new();
    for (i, event) in stream.iter().enumerate() {
        let _ = session.push_event(event.clone()).expect("in-order push");
        if (i + 1) % 450 == 0 {
            let fresh = session.poll_results();
            let live = session.metrics_snapshot();
            println!(
                "after {:>4} readings: {:>3} new alarms (total {:>3}), {:>9} cost units, {:>6.1} KB",
                i + 1,
                fresh.len(),
                alarms.len() + fresh.len(),
                live.cost_units,
                live.peak_memory_kb(),
            );
            alarms.extend(fresh);
        }
    }
    let outcome = session.finish().expect("session finishes");
    alarms.extend(outcome.results.iter().cloned());
    println!(
        "\nstream closed: {} alarms raised in total ({} of them polled live), {} suppressed inputs",
        outcome.results_count,
        alarms.len() as u64 - outcome.results.len() as u64,
        outcome.snapshot.stats.intermediate_suppressed,
    );
    assert_eq!(alarms.len() as u64, outcome.results_count);

    // ---- Same query, every core: only the configuration changes. ----
    let sharded = builder
        .clone()
        .sharded(RuntimeConfig::with_shards(4))
        .build()
        .expect("zone-keyed query shards losslessly");
    let mut session = sharded.session().expect("sharded session opens");
    session
        .push_batch(stream.iter().cloned())
        .expect("in-order push");
    let parallel = session.finish().expect("sharded session finishes");
    println!(
        "\nsharded across 4 workers: {} alarms",
        parallel.results_count
    );
    for shard in &parallel.per_shard {
        println!(
            "  shard {}: {:>4} readings → {:>3} alarms",
            shard.shard, shard.arrivals, shard.results_count
        );
    }
    assert!(output::same_results(&alarms, &parallel.results));
    println!("single-threaded and sharded alarm sets are identical ✓");

    // ---- A query that cannot shard is rejected, not silently wrong. ----
    let unshardable = Engine::builder()
        .query_cql(
            "SELECT * FROM humidity [RANGE 90 seconds], light [RANGE 90 seconds] \
             WHERE humidity.calib = light.calib",
        )
        .partition_key_column(1) // partition on a column the join ignores
        .sharded(RuntimeConfig::with_shards(4))
        .build();
    match unshardable {
        Err(EngineError::NotPartitionable { detail }) => {
            println!("\nnon-key-partitionable query rejected at build time ✓\n  ({detail})");
        }
        other => panic!("expected NotPartitionable, got {other:?}"),
    }
}
