//! Multi-query serving: three overlapping standing queries, one stream.
//!
//! ```text
//! cargo run --example serving_tier --release
//! ```
//!
//! A dashboard (all trade/quote matches), an alert rule (only high-volume
//! matches) and an audit feed (a second subscription to the dashboard's
//! query, phrased differently) are registered on one
//! [`jit_serve::QueryRegistry`]. Every market event is pushed **once**; the
//! registry classifies it against the deduplicated filter set, folds it once
//! into the shared per-source windows, and routes it to the pipelines that
//! need it. Mid-run the alert rule is cancelled — its pipeline is torn down
//! and its share of the state reclaimed — while the other queries keep
//! serving, never missing a result.

use jit_dsms::prelude::*;
use jit_dsms::serve::QueryRegistry;
use std::sync::Arc;

fn main() {
    // The global catalog: one trades stream and one quotes stream, keyed by
    // instrument id, each carrying a volume column.
    let mut catalog = Catalog::new();
    catalog.add_source("trades", vec!["instrument".into(), "volume".into()]);
    catalog.add_source("quotes", vec!["instrument".into(), "volume".into()]);
    let trades = SourceId(0);
    let quotes = SourceId(1);

    let mut registry = QueryRegistry::new(catalog);

    // Three standing queries. The audit feed is the dashboard query with
    // the join written the other way round — the registry canonicalizes
    // both to one key and runs ONE pipeline for the two of them.
    let dashboard = registry
        .register(
            "SELECT * FROM trades [RANGE 1 minutes], quotes [RANGE 1 minutes] \
             WHERE trades.instrument = quotes.instrument",
        )
        .expect("dashboard registers");
    let alerts = registry
        .register(
            "SELECT * FROM trades [RANGE 1 minutes], quotes [RANGE 1 minutes] \
             WHERE trades.instrument = quotes.instrument AND trades.volume > 70",
        )
        .expect("alert rule registers");
    let audit = registry
        .register(
            "select * from trades [range 1 minutes], quotes [range 1 minutes] \
             where quotes.instrument = trades.instrument",
        )
        .expect("audit feed registers");
    println!(
        "{} queries registered, {} pipelines executing (audit shares the dashboard's)\n",
        registry.num_queries(),
        registry.num_pipelines()
    );

    // One market stream, pushed once. A tiny LCG stands in for the feed.
    let mut state: u64 = 0xB5AD_4ECE_DA1C_E2A9;
    let mut next = move |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let mut alarm_count = 0usize;
    for i in 0..600u64 {
        let source = if next(2) == 0 { trades } else { quotes };
        let instrument = next(20) as i64;
        let volume = next(100) as i64;
        registry
            .push(Arc::new(BaseTuple::new(
                source,
                i,
                Timestamp((i + 1) * 250),
                vec![Value::int(instrument), Value::int(volume)],
            )))
            .expect("arrival pushes");

        // The alert rule is cancelled a third of the way in.
        if i == 200 {
            let pending = registry.deregister(alerts).expect("alert rule cancels");
            alarm_count += pending.len();
            println!(
                "[t={}s] alert rule cancelled after {} alarms; {} pipelines remain",
                (i + 1) / 4,
                alarm_count,
                registry.num_pipelines()
            );
        } else if i % 100 == 0 && i > 0 {
            let alarms = registry.poll_results(alerts).map(|r| r.len()).unwrap_or(0);
            alarm_count += alarms;
            let matches = registry.poll_results(dashboard).expect("dashboard polls");
            println!(
                "[t={:>3}s] dashboard +{:<4} alarms +{alarms:<3} (window: {} trades live)",
                (i + 1) / 4,
                matches.len(),
                registry
                    .window_contents(dashboard, trades)
                    .expect("window readable")
                    .len()
            );
        }
    }

    let report = registry.sharing_report();
    println!(
        "\nsharing: {} arrivals classified {} times ({} saved), \
         windows {} B shared vs {} B isolated",
        report.arrivals,
        report.classifications,
        report.classifications_saved,
        report.shared_state_bytes,
        report.isolated_state_bytes
    );

    // End of stream: the dashboard and the audit feed — one pipeline, two
    // subscribers — finish with identical complete result streams.
    let finished = registry.finish().expect("registry finishes");
    let by_query: Vec<_> = finished
        .iter()
        .map(|(q, o)| (*q, o.results.len()))
        .collect();
    println!("final deliveries: {by_query:?}");
    let dashboard_total: usize = finished
        .iter()
        .find(|(q, _)| *q == dashboard)
        .map(|(_, o)| o.results.len())
        .expect("dashboard finishes");
    let audit_total = finished
        .iter()
        .find(|(q, _)| *q == audit)
        .map(|(_, o)| o.results.len())
        .expect("audit finishes");
    // The audit feed never polled, so it gets everything at the end; the
    // dashboard polled some results out mid-run.
    assert!(audit_total >= dashboard_total);
    println!("✓ audit feed saw the complete stream ({audit_total} matches) without ever polling");
}
