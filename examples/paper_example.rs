//! The running example of the paper, step by step (Table I).
//!
//! ```text
//! cargo run --example paper_example
//! ```
//!
//! Reproduces Section I / Section III-A: sources A, B, C with the predicates
//! `A.x = B.x` and `A.y = C.y`; b1, b2, b3 arrive, then a1 (no C partner →
//! a1 becomes an MNS and Op1 is told to suspend), then b4 and a2 (whose
//! processing JIT suppresses), and finally c1 with `y = 100`, which resumes
//! production and yields the seven delayed results.

use jit_core::policy::JitPolicy;
use jit_core::JitJoinOperator;
use jit_exec::executor::{Executor, ExecutorConfig};
use jit_exec::plan::{Input, PlanBuilder};
use jit_types::{
    BaseTuple, ColumnRef, Duration, EquiPredicate, PredicateSet, SourceId, SourceSet, Timestamp,
    Value, Window,
};
use std::sync::Arc;

fn base(source: u16, seq: u64, ts_s: u64, values: Vec<i64>) -> Arc<BaseTuple> {
    Arc::new(BaseTuple::new(
        SourceId(source),
        seq,
        Timestamp::from_secs(ts_s),
        values.into_iter().map(Value::int).collect(),
    ))
}

fn main() {
    // Figure 1: A(x, y), B(x), C(y); predicates A.x = B.x and A.y = C.y.
    let predicates = PredicateSet::from_predicates(vec![
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        ),
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 1),
            ColumnRef::new(SourceId(2), 0),
        ),
    ]);
    let window = Window::new(Duration::from_mins(5));
    let policy = JitPolicy::full();

    let mut builder = PlanBuilder::new();
    let op1 = builder.add_operator(
        Box::new(JitJoinOperator::new(
            "Op1: A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            predicates.clone(),
            window,
            policy,
        )),
        vec![Input::Source(SourceId(0)), Input::Source(SourceId(1))],
    );
    let _op2 = builder.add_operator(
        Box::new(JitJoinOperator::new(
            "Op2: AB⋈C",
            SourceSet::first_n(2),
            SourceSet::single(SourceId(2)),
            predicates,
            window,
            policy,
        )),
        vec![Input::Operator(op1), Input::Source(SourceId(2))],
    );
    let mut executor = Executor::new(builder.build().unwrap(), ExecutorConfig::default());

    let arrivals: Vec<(&str, u16, Arc<BaseTuple>)> = vec![
        ("c0(y=999)", 2, base(2, 99, 0, vec![999])),
        ("b1(x=1)", 1, base(1, 1, 0, vec![1])),
        ("b2(x=1)", 1, base(1, 2, 0, vec![1])),
        ("b3(x=1)", 1, base(1, 3, 0, vec![1])),
        ("a1(x=1,y=100)", 0, base(0, 1, 1, vec![1, 100])),
        ("b4(x=1)", 1, base(1, 4, 2, vec![1])),
        ("a2(x=1,y=100)", 0, base(0, 2, 3, vec![1, 100])),
        ("c1(y=100)", 2, base(2, 1, 4, vec![100])),
    ];

    println!("Replaying the arrival sequence of Table I under JIT:\n");
    let mut last_results = 0;
    let mut last_intermediate = 0;
    let mut last_suppressed = 0;
    for (label, source, tuple) in arrivals {
        executor.ingest(SourceId(source), tuple);
        let stats = executor.metrics().stats;
        println!(
            "{label:<16} → partial results so far: {:>2}   suppressed inputs: {:>2}   final results: {:>2}   new finals: {}",
            stats.intermediate_produced,
            stats.intermediate_suppressed,
            stats.results_emitted,
            stats.results_emitted - last_results,
        );
        last_results = stats.results_emitted;
        last_intermediate = stats.intermediate_produced;
        last_suppressed = stats.intermediate_suppressed;
    }

    println!("\nWhen c1 arrives, Op2 finds the buffered MNS a1, resumes Op1, and the");
    println!("delayed partial results are generated just in time: the query reports");
    println!(
        "{} join results in total, having produced {} partial results and suppressed {} inputs.",
        last_results, last_intermediate, last_suppressed
    );

    // Sanity: REF on the same sequence reports the same number of results.
    assert_eq!(last_results, executor.results().len() as u64);
    assert_eq!(executor.order_violations(), 0);
    let op1_ref = executor.operator(op1);
    println!(
        "(Op1 is {} suspended at the end of the run.)",
        if op1_ref.is_suspended() {
            "still"
        } else {
            "no longer"
        }
    );
}
