//! The running example of the paper, step by step (Table I).
//!
//! ```text
//! cargo run --example paper_example
//! ```
//!
//! Reproduces Section I / Section III-A: sources A, B, C with the predicates
//! `A.x = B.x` and `A.y = C.y`; b1, b2, b3 arrive, then a1 (no C partner →
//! a1 becomes an MNS and Op1 is told to suspend), then b4 and a2 (whose
//! processing JIT suppresses), and finally c1 with `y = 100`, which resumes
//! production and yields the seven delayed results.
//!
//! The arrivals are *pushed* one at a time through a live engine session —
//! the JIT mechanism is online, and the session API lets us watch the
//! suppression and resumption happen between pushes.

use jit_dsms::prelude::*;
use std::sync::Arc;

fn base(source: u16, seq: u64, ts_s: u64, values: Vec<i64>) -> Arc<BaseTuple> {
    Arc::new(BaseTuple::new(
        SourceId(source),
        seq,
        Timestamp::from_secs(ts_s),
        values.into_iter().map(Value::int).collect(),
    ))
}

fn main() {
    // Figure 1: A(x, y), B(x), C(y); predicates A.x = B.x and A.y = C.y.
    // The left-deep shape instantiates exactly the paper's two operators:
    // Op1 = A⋈B, Op2 = AB⋈C.
    let predicates = PredicateSet::from_predicates(vec![
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        ),
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 1),
            ColumnRef::new(SourceId(2), 0),
        ),
    ]);
    let engine = Engine::builder()
        .query_shape(
            PlanShape::left_deep(3),
            predicates,
            Window::new(Duration::from_mins(5)),
        )
        .mode(ExecutionMode::Jit(JitPolicy::full()))
        .build()
        .expect("the paper's plan builds");
    let mut session = engine.session().expect("session opens");

    let arrivals: Vec<(&str, u16, Arc<BaseTuple>)> = vec![
        ("c0(y=999)", 2, base(2, 99, 0, vec![999])),
        ("b1(x=1)", 1, base(1, 1, 0, vec![1])),
        ("b2(x=1)", 1, base(1, 2, 0, vec![1])),
        ("b3(x=1)", 1, base(1, 3, 0, vec![1])),
        ("a1(x=1,y=100)", 0, base(0, 1, 1, vec![1, 100])),
        ("b4(x=1)", 1, base(1, 4, 2, vec![1])),
        ("a2(x=1,y=100)", 0, base(0, 2, 3, vec![1, 100])),
        ("c1(y=100)", 2, base(2, 1, 4, vec![100])),
    ];

    println!("Replaying the arrival sequence of Table I under JIT:\n");
    let mut last_results = 0;
    let mut last_intermediate = 0;
    let mut last_suppressed = 0;
    let mut last_suspends = 0;
    for (label, source, tuple) in arrivals {
        let _ = session
            .push(SourceId(source), tuple)
            .expect("in-order push");
        let stats = session.metrics_snapshot().stats;
        let note = if stats.feedback_suspend > last_suspends {
            "  ← MNS detected, producer suspended"
        } else {
            ""
        };
        println!(
            "{label:<16} → partial results so far: {:>2}   suppressed inputs: {:>2}   final results: {:>2}   new finals: {}{note}",
            stats.intermediate_produced,
            stats.intermediate_suppressed,
            stats.results_emitted,
            stats.results_emitted - last_results,
        );
        last_results = stats.results_emitted;
        last_intermediate = stats.intermediate_produced;
        last_suppressed = stats.intermediate_suppressed;
        last_suspends = stats.feedback_suspend;
    }

    println!("\nWhen c1 arrives, Op2 finds the buffered MNS a1, resumes Op1, and the");
    println!("delayed partial results are generated just in time: the query reports");
    println!(
        "{} join results in total, having produced {} partial results and suppressed {} inputs.",
        last_results, last_intermediate, last_suppressed
    );

    let outcome = session.finish().expect("session finishes");
    assert_eq!(last_results, outcome.results_count);
    assert_eq!(outcome.order_violations, 0);
    println!(
        "({} suspend / {} resume feedback messages were exchanged along the way.)",
        outcome.snapshot.stats.feedback_suspend, outcome.snapshot.stats.feedback_resume
    );
}
