//! Quickstart: run the paper's Figure 1 query under REF and JIT and compare.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! The example
//! 1. parses the CQL query of Figure 1a,
//! 2. generates a synthetic workload for its three sources,
//! 3. executes the same trace on two engines built from one builder — the
//!    reference engine (REF) and just-in-time processing (JIT) — and
//! 4. verifies both produce the same results while printing how much work
//!    JIT saved.

use jit_dsms::prelude::*;

fn main() {
    // The continuous query of Figure 1a. The parser gives us the window; the
    // workload below supplies the clique predicates actually used by the
    // evaluation (every pair of sources joined), which is the harder case.
    let query = parse_cql(
        "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes], C [RANGE 5 minutes] \
         WHERE A.x = B.x AND A.y = C.y",
    )
    .expect("the paper's query parses");
    println!(
        "query window: {:?} minutes",
        query.window().length.as_mins_f64()
    );

    // A three-source clique workload: 1.3 tuples/s/source, values in
    // [1..150] (a selective join — most partial results never find a C
    // partner), 8 minutes of stream time, fixed seed for reproducibility.
    let workload = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_window_minutes(5.0)
        .with_rate(1.3)
        .with_dmax(150)
        .with_duration(Duration::from_mins(8))
        .with_seed(7);
    let shape = PlanShape::left_deep(3); // (A ⋈ B) ⋈ C, as in Figure 1b

    // One builder, two engines: only the execution mode differs. The same
    // builder could target every core with `.sharded(RuntimeConfig …)`.
    let trace = WorkloadGenerator::generate(&workload);
    let outcomes = Engine::builder()
        .workload(&workload, &shape)
        .compare(
            &trace,
            &[ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())],
        )
        .expect("engine builds");
    let (ref_run, jit_run) = (&outcomes[0], &outcomes[1]);

    println!("\n              {:>14} {:>14}", "REF", "JIT");
    println!(
        "results       {:>14} {:>14}",
        ref_run.results_count, jit_run.results_count
    );
    println!(
        "cost units    {:>14} {:>14}",
        ref_run.snapshot.cost_units, jit_run.snapshot.cost_units
    );
    println!(
        "peak mem (KB) {:>14.1} {:>14.1}",
        ref_run.snapshot.peak_memory_kb(),
        jit_run.snapshot.peak_memory_kb()
    );
    println!(
        "intermediates {:>14} {:>14}",
        ref_run.snapshot.stats.intermediate_produced, jit_run.snapshot.stats.intermediate_produced
    );
    println!(
        "suppressed    {:>14} {:>14}",
        ref_run.snapshot.stats.intermediate_suppressed,
        jit_run.snapshot.stats.intermediate_suppressed
    );
    println!(
        "feedback msgs {:>14} {:>14}",
        ref_run.snapshot.stats.feedback_total(),
        jit_run.snapshot.stats.feedback_total()
    );

    // Correctness guarantee (see DESIGN.md): JIT produces a duplicate-free
    // subset of REF's results and never misses a result whose components are
    // all strictly within one window of each other; the only REF-extra
    // results are "frozen composites" whose components have already expired.
    assert!(!output::has_duplicates(&jit_run.results));
    assert!(output::missing_from(&jit_run.results, &ref_run.results).is_empty());
    let in_window = |t: &Tuple| t.ts().saturating_sub(t.min_ts()) < workload.window().length;
    let jit_keys: std::collections::BTreeSet<_> = jit_run.results.iter().map(|t| t.key()).collect();
    let missed = ref_run
        .results
        .iter()
        .filter(|t| in_window(t) && !jit_keys.contains(&t.key()))
        .count();
    assert_eq!(missed, 0, "JIT missed an in-window result");
    println!(
        "\n✓ JIT found every in-window result ({} of REF's {} results; the rest contain expired components)",
        jit_run.results_count, ref_run.results_count
    );
    let ratio = ref_run.snapshot.cost_units as f64 / jit_run.snapshot.cost_units.max(1) as f64;
    println!("✓ REF/JIT CPU cost ratio on this small workload: {ratio:.2}× (the gap grows with window, rate and source count — see EXPERIMENTS.md)");
}
