//! Durability end to end: bounded disorder, checkpoints, crash recovery.
//!
//! ```text
//! cargo run --example recovery --release
//! ```
//!
//! A production stream is neither ordered nor reliable. This walkthrough
//! takes a factory-monitoring join and runs it the way an operator actually
//! would:
//!
//! 1. **Bounded disorder** — the feed is shuffled so ~5% of readings show
//!    up late (network retries, sensor buffering). Instead of erroring, a
//!    `DisorderPolicy::Bounded` session reorders them behind a watermark
//!    and drops only what exceeds the bound — visibly, in metrics.
//! 2. **Checkpoints on a cadence** — every 500 arrivals the session's full
//!    state (windows, reorder buffer, progress) goes to a versioned file.
//! 3. **A crash** — the session is dropped on the floor mid-stream.
//! 4. **Recovery** — a new session restores from the last checkpoint and
//!    replays the tail of the input from `Session::pushed()` (the replay
//!    cursor). The delivered results are byte-identical to a run that never
//!    crashed: exactly-once, end to end.

use jit_dsms::prelude::*;
use std::sync::Arc;

/// Humidity and light readings joined on the zone identifier.
const ALARM_QUERY: &str = "SELECT * FROM \
    humidity [RANGE 5 minutes], light [RANGE 5 minutes] \
    WHERE humidity.zone = light.zone";

const ZONES: u64 = 120;
const READINGS: u64 = 3_000;

/// Deterministic reading stream, two readings per second, zones from a
/// small LCG (no RNG dependency needed in an example).
fn readings() -> Vec<ArrivalEvent> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut events = Vec::new();
    for i in 0..READINGS {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let zone = ((state >> 33) % ZONES) as i64;
        let source = (i % 2) as u16;
        let ts = Timestamp::from_millis(i * 500);
        events.push(ArrivalEvent {
            ts,
            source: SourceId(source),
            tuple: Arc::new(BaseTuple::new(
                SourceId(source),
                i / 2,
                ts,
                vec![Value::int(zone)],
            )),
        });
    }
    events
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lateness = Duration::from_secs(10);
    let engine = Engine::builder()
        .query_cql(ALARM_QUERY)
        .disorder(DisorderPolicy::Bounded(lateness))
        .build()?;

    // ── 1. Disorder the feed: ~5% of readings delayed up to 8 seconds ──
    let ordered = Trace::new(readings());
    let feed = DisorderSpec::new(0.05, Duration::from_secs(8), 42).apply(&ordered);
    println!(
        "feed: {} readings, {} adjacent inversions after disorder",
        feed.len(),
        feed.windows(2).filter(|w| w[0].ts > w[1].ts).count()
    );

    // ── Oracle: the same disordered feed, never interrupted ──
    let mut oracle = engine.session()?;
    for event in &feed {
        let _ = oracle.push_event(event.clone())?;
    }
    let oracle_results = oracle.finish()?.results;

    // ── 2.+3. The "production" run: checkpoints every 500 arrivals,
    //          then a crash two thirds in ──
    let ckpt = std::env::temp_dir().join("recovery-example.ckpt");
    let crash_at = feed.len() * 2 / 3;
    let mut session = engine.session()?;
    let mut delivered = Vec::new();
    for (i, event) in feed.iter().take(crash_at).enumerate() {
        let _ = session.push_event(event.clone())?; // drops counted in metrics
        if (i + 1) % 500 == 0 {
            // Poll *before* checkpointing: delivered results must leave the
            // session before the cut, or a restore would deliver them a
            // second time (the checkpoint preserves whatever is unpolled).
            delivered.extend(session.poll_results());
            let stats = session.checkpoint_to(&ckpt)?;
            println!(
                "checkpoint at arrival {:>5}: {:>7} bytes in {} ms",
                i + 1,
                stats.bytes,
                stats.millis
            );
        }
    }
    let snapshot = session.metrics_snapshot();
    println!(
        "crash at arrival {crash_at}: {} late arrivals reordered in the buffer \
         (peak {} tuples), {} beyond the bound dropped",
        snapshot.late_arrivals, snapshot.reorder_buffer_peak, snapshot.late_dropped
    );
    drop(session); // ── the crash: all in-memory state is gone ──

    // ── 4. Restore from the last checkpoint, replay the tail ──
    let mut restored = engine.restore_file(&ckpt)?;
    let resume_from = restored.pushed() as usize;
    println!(
        "restored from {}: replaying arrivals {resume_from}..{}",
        ckpt.display(),
        feed.len()
    );
    for event in feed.iter().skip(resume_from) {
        let _ = restored.push_event(event.clone())?;
    }
    delivered.extend(restored.finish()?.results);

    // Exactly-once: polled-before-crash + recovered == never-crashed run.
    assert_eq!(
        delivered, oracle_results,
        "recovered result stream must be byte-identical"
    );
    println!(
        "recovered run delivered {} alarms — byte-identical to the uninterrupted run",
        delivered.len()
    );

    // A checkpoint is useless if it silently restores into the wrong
    // configuration: a strict engine refuses a bounded checkpoint, typed.
    let strict = Engine::builder().query_cql(ALARM_QUERY).build()?;
    match strict.restore_file(&ckpt) {
        Err(EngineError::Checkpoint(CheckpointError::Mismatch(detail))) => {
            println!("strict engine correctly refused the bounded checkpoint: {detail}");
        }
        other => panic!("expected a policy mismatch, got {other:?}"),
    }
    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
