//! Multi-core quickstart: one engine builder, one `.sharded(...)` call.
//!
//! Generates a key-partitionable clique-join workload, builds two engines
//! from the *same* builder — one on the single-threaded executor, one
//! across four hash-partitioned shards — and shows that the result sets
//! agree while the work spreads over cores.
//!
//! ```text
//! cargo run --release --example parallel_quickstart
//! ```

use jit_dsms::prelude::*;

fn main() {
    // A workload whose join predicates all reduce to key equality
    // (shared-key mode), which makes hash-sharding lossless. The engine
    // checks this at build time: a non-partitionable workload would be a
    // typed `EngineError::NotPartitionable`, not silently missing results.
    let spec = parallel_workload(4, 50)
        .with_rate(2.0)
        .with_window_minutes(3.0)
        .with_duration(Duration::from_mins(4))
        .with_seed(7);
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);
    println!(
        "workload: {} sources, {} arrivals, shared join key in [1..{}]",
        spec.num_sources,
        trace.len(),
        spec.dmax
    );

    let builder = Engine::builder()
        .workload(&spec, &shape)
        .mode(ExecutionMode::Jit(JitPolicy::full()));

    // Baseline: the paper's single-threaded cascade executor.
    let sequential = builder
        .clone()
        .build()
        .expect("engine builds")
        .run_trace(&trace)
        .expect("single-threaded run succeeds");
    println!(
        "single-threaded JIT: {} results, {:.2} pseudo-seconds of CPU cost",
        sequential.results_count,
        sequential.snapshot.cost_pseudo_seconds()
    );

    // The same trace across four shards: one executor per core, bounded
    // channels in between, timestamp-ordered merge at the sink. Switching
    // backends is configuration, not code.
    let parallel = builder
        .sharded(
            RuntimeConfig::with_shards(4)
                .with_batch_size(64)
                .with_channel_capacity(32),
        )
        .build()
        .expect("shared-key workload shards")
        .run_trace(&trace)
        .expect("parallel run succeeds");
    println!(
        "sharded JIT (4 shards): {} results, max shard load {:.0}%",
        parallel.results_count,
        parallel.max_shard_load() * 100.0
    );
    for shard in &parallel.per_shard {
        println!(
            "  shard {}: {} arrivals → {} results, peak memory {:.1} KB",
            shard.shard,
            shard.arrivals,
            shard.results_count,
            shard.snapshot.peak_memory_kb()
        );
    }

    // Same result set, globally timestamp-ordered after the k-way merge.
    assert!(output::same_results(&sequential.results, &parallel.results));
    println!("sequential and sharded result sets are identical ✓");
}
