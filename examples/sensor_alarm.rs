//! Sensor-network alarm detection — the motivating scenario of the paper's
//! introduction, as a *batch* comparison of REF, DOE and JIT. (See
//! `examples/live_session.rs` for the same scenario served through the
//! push-based live-session API.)
//!
//! ```text
//! cargo run --example sensor_alarm --release
//! ```
//!
//! Three sensor streams are joined on a shared zone identifier; an alarm
//! fires when readings from the same zone co-occur within the window. Most
//! zones never produce a co-occurrence, which is exactly the high-selectivity
//! regime where JIT shines: partial results for zones with no third reading
//! are never generated.

use jit_dsms::prelude::*;

fn main() {
    // Humidity (A), light (B), temperature (C): each tuple carries the zone
    // ids it correlates with on the two other streams (the clique layout used
    // throughout the paper's evaluation). 400 zones → selective join.
    let workload = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_window_minutes(10.0)
        .with_rate(1.3)
        .with_dmax(400)
        .with_duration(Duration::from_mins(20))
        .with_seed(2008);
    let shape = PlanShape::left_deep(3);

    println!("Factory monitoring: humidity ⋈ light ⋈ temperature by zone");
    println!(
        "window = {} min, {} readings/s per sensor stream, {} zones\n",
        workload.window_minutes, workload.rate_per_sec, workload.dmax
    );

    let trace = WorkloadGenerator::generate(&workload);
    let outcomes = Engine::builder()
        .workload(&workload, &shape)
        .compare(
            &trace,
            &[
                ExecutionMode::Ref,
                ExecutionMode::Doe,
                ExecutionMode::Jit(JitPolicy::full()),
            ],
        )
        .expect("engine builds");

    println!(
        "{:<6} {:>14} {:>14} {:>12} {:>14} {:>12}",
        "mode", "cost units", "peak mem KB", "alarms", "intermediates", "suppressed"
    );
    for outcome in &outcomes {
        println!(
            "{:<6} {:>14} {:>14.1} {:>12} {:>14} {:>12}",
            outcome.mode_label,
            outcome.snapshot.cost_units,
            outcome.snapshot.peak_memory_kb(),
            outcome.results_count,
            outcome.snapshot.stats.intermediate_produced,
            outcome.snapshot.stats.intermediate_suppressed,
        );
    }

    let ref_run = &outcomes[0];
    let jit_run = &outcomes[2];
    // JIT raises every alarm whose readings are mutually within the window
    // (REF may additionally report stale combinations whose oldest reading
    // has already expired — see DESIGN.md, known deviations).
    assert!(!output::has_duplicates(&jit_run.results));
    assert!(output::missing_from(&jit_run.results, &ref_run.results).is_empty());
    println!(
        "\n✓ all fresh alarms raised; JIT avoided {} of {} partial results ({:.0}%)",
        ref_run.snapshot.stats.intermediate_produced - jit_run.snapshot.stats.intermediate_produced,
        ref_run.snapshot.stats.intermediate_produced,
        100.0
            * (ref_run.snapshot.stats.intermediate_produced
                - jit_run.snapshot.stats.intermediate_produced) as f64
            / ref_run.snapshot.stats.intermediate_produced.max(1) as f64
    );
}
