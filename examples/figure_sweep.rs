//! Regenerate one figure of the paper's evaluation from the command line.
//!
//! ```text
//! cargo run --example figure_sweep --release -- fig10 0.1
//! ```
//!
//! The first argument selects the figure (`fig10` … `fig17`, default
//! `fig10`), the second the duration scale (1.0 = 60 minutes of application
//! time per point; the paper uses 5.0; default 0.05 so the example finishes
//! quickly).

use jit_dsms::harness::figures::check_expectations;
use jit_dsms::harness::table_out::render_table;
use jit_dsms::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure_id = args.get(1).map(String::as_str).unwrap_or("fig10");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let spec = FigureSpec::by_id(figure_id).unwrap_or_else(|| {
        eprintln!("unknown figure {figure_id}; expected fig10..fig17");
        std::process::exit(2);
    });
    println!(
        "Running {} at duration scale {scale} (the paper's full runs correspond to 5.0)…\n",
        spec.id
    );
    let result = run_figure(&spec, scale, 20080415);
    println!("{}", render_table(&result));

    let violations = check_expectations(&result, scale);
    if violations.is_empty() {
        println!("✓ the measured series reproduces the paper's qualitative shape:");
        println!(
            "  JIT never exceeds REF in CPU cost or peak memory and both report the same results."
        );
        println!("  (Peak memory is only compared at duration scales ≥ 0.3: shorter runs never");
        println!("  expire tuples, a regime that inherently favours REF — see the harness docs.)");
    } else {
        println!("✗ deviations from the paper's expectations:");
        for v in violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }

    // Print the headline ratio at the default (middle) point.
    if let Some(row) = result.rows.get(result.rows.len() / 2) {
        let find = |mode: &str| row.measurements.iter().find(|(m, _, _)| m == mode);
        if let (Some(r), Some(j)) = (find("REF"), find("JIT")) {
            println!(
                "\nAt {} = {}: JIT is {:.1}× cheaper in CPU and uses {:.0}% of REF's peak memory.",
                result.x_label,
                row.x,
                r.1.cost_units as f64 / j.1.cost_units.max(1) as f64,
                100.0 * j.1.peak_memory_bytes as f64 / r.1.peak_memory_bytes.max(1) as f64
            );
        }
    }
}
