//! # jit-dsms — facade crate
//!
//! Re-exports the whole JIT continuous-query processing workspace behind a
//! single dependency, so examples, integration tests and downstream users can
//! write `use jit_dsms::...` without tracking individual crates.
//!
//! The workspace reproduces Yang & Papadias, *Just-In-Time Processing of
//! Continuous Queries* (ICDE 2008):
//!
//! * [`types`] — tuples, windows, predicates, feedback messages.
//! * [`metrics`] — cost model, analytical memory accounting, counters.
//! * [`stream`] — synthetic clique-join workload generation (Section VI).
//! * [`exec`] — the DSMS substrate: operators, states, queues, scheduler.
//! * [`core`] — the JIT mechanism: MNS detection, blacklists, feedback,
//!   dynamic production control, plus the DOE baseline.
//! * [`plan`] — plan construction (bushy / left-deep / M-Join / Eddy).
//! * [`runtime`] — the sharded parallel runtime: hash-partitioned
//!   multi-core execution of the same plans.
//! * [`durable`] — the durability subsystem: watermark-driven disorder
//!   tolerance (reorder buffer, bounded-lateness policies) and versioned
//!   state checkpointing for crash recovery.
//! * [`engine`] — **the public entry point**: the push-based
//!   `EngineBuilder` → `Engine` → `Session` API serving both the
//!   single-threaded executor and the sharded runtime behind one
//!   `Backend` seam.
//! * [`serve`] — the multi-query serving tier: a runtime `QueryRegistry`
//!   sharing pipelines, selection pushdown and window state across many
//!   standing queries over one pushed stream.
//! * [`harness`] — experiment harness regenerating the paper's figures,
//!   plus the parallel entry point for scaling experiments.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/live_session.rs` for push-based live ingestion,
//! `examples/parallel_quickstart.rs` for the multi-core version, and
//! `examples/serving_tier.rs` for multi-query serving.

pub use jit_core as core;
pub use jit_durable as durable;
pub use jit_engine as engine;
pub use jit_exec as exec;
pub use jit_harness as harness;
pub use jit_metrics as metrics;
pub use jit_plan as plan;
pub use jit_runtime as runtime;
pub use jit_serve as serve;
pub use jit_stream as stream;
pub use jit_types as types;

/// A convenient prelude importing the names used by virtually every program
/// built on the library.
pub mod prelude {
    pub use jit_core::policy::{ExecutionMode, JitPolicy, MnsDetection};
    pub use jit_engine::{
        Backend, CheckpointError, CheckpointStats, DisorderPolicy, Engine, EngineBuilder,
        EngineError, EngineOutcome, PushOutcome, Session,
    };
    pub use jit_exec::executor::{Executor, ExecutorConfig};
    pub use jit_exec::output;
    pub use jit_exec::state::{JoinKeySpec, StateIndexMode};
    pub use jit_harness::config::ExperimentConfig;
    pub use jit_harness::figures::{run_figure, FigureSpec};
    pub use jit_harness::parallel::{parallel_workload, run_parallel, run_parallel_trace};
    pub use jit_plan::cql::parse_cql;
    pub use jit_plan::runtime::{QueryRuntime, RunOutcome};
    pub use jit_plan::shapes::{PlanShape, TreeShape};
    pub use jit_runtime::{ParallelOutcome, RuntimeConfig, ShardedRuntime, ShardedSession};
    pub use jit_serve::{QueryId, QueryRegistry, ServeOptions};
    pub use jit_stream::arrival::ArrivalEvent;
    pub use jit_stream::workload::WorkloadSpec;
    pub use jit_stream::{DisorderSpec, ShardPartitioner, Trace, WorkloadGenerator};
    pub use jit_types::{
        BaseTuple, BatchPolicy, Catalog, ColumnRef, Duration, EquiPredicate, Feedback,
        FeedbackCommand, PredicateSet, SourceId, SourceSet, Timestamp, Tuple, Value, Window,
    };
}
