//! Shard determinism: the sharded parallel runtime must be transparent.
//!
//! For every shard count N ∈ {1, 2, 4}, executing a key-partitionable
//! workload across N hash-partitioned shards must produce exactly the same
//! result multiset as the single-threaded `Executor` on the same trace, and
//! the merged stream must be globally timestamp-ordered (the paper's
//! temporal-order requirement, Section II). The run must also be
//! deterministic: repeating it yields byte-identical result sequences.

use jit_dsms::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn spec(sources: usize, seed: u64) -> WorkloadSpec {
    parallel_workload(sources, 16)
        .with_rate(1.0)
        .with_window_minutes(2.0)
        .with_duration(Duration::from_secs(110))
        .with_seed(seed)
}

fn check_against_sequential(spec: &WorkloadSpec, shape: &PlanShape, mode: ExecutionMode) {
    let trace = WorkloadGenerator::generate(spec);
    let sequential = QueryRuntime::run_trace(&trace, spec, shape, mode, ExecutorConfig::default())
        .expect("sequential plan builds");
    assert!(
        sequential.results_count > 0,
        "workload must produce results for the comparison to mean anything"
    );
    for shards in SHARD_COUNTS {
        let parallel = run_parallel_trace(
            &trace,
            spec,
            shape,
            mode,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(shards),
        )
        .expect("parallel run succeeds");
        // Set equality against the single-threaded executor.
        assert!(
            output::same_results(&sequential.results, &parallel.results),
            "{} shards diverged from sequential {} on {}: missing {}, extra {}",
            shards,
            sequential.mode_label,
            shape.label(),
            output::missing_from(&sequential.results, &parallel.results).len(),
            output::missing_from(&parallel.results, &sequential.results).len(),
        );
        assert_eq!(parallel.results_count, sequential.results_count);
        assert!(!output::has_duplicates(&parallel.results));
        // The merged sink preserves the global temporal-order guarantee.
        assert!(
            output::is_temporally_ordered(&parallel.results),
            "merged results out of timestamp order at {shards} shards"
        );
        assert_eq!(parallel.order_violations, 0);
        // Every arrival was ingested by exactly one shard.
        assert_eq!(parallel.snapshot.stats.tuples_arrived, trace.len() as u64);
        assert_eq!(parallel.per_shard.len(), shards);
    }
}

#[test]
fn ref_bushy_matches_sequential_across_shard_counts() {
    check_against_sequential(&spec(4, 42), &PlanShape::bushy(4), ExecutionMode::Ref);
}

#[test]
fn ref_leftdeep_matches_sequential_across_shard_counts() {
    check_against_sequential(&spec(3, 1889), &PlanShape::left_deep(3), ExecutionMode::Ref);
}

#[test]
fn jit_matches_sequential_ref_result_set() {
    // JIT may emit a resumed result late (documented deviation), so compare
    // result *sets* against sequential REF rather than asserting order.
    let spec = spec(4, 7);
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);
    let reference = QueryRuntime::run_trace(
        &trace,
        &spec,
        &shape,
        ExecutionMode::Ref,
        ExecutorConfig::default(),
    )
    .expect("plan builds");
    assert!(reference.results_count > 0);
    for shards in SHARD_COUNTS {
        let parallel = run_parallel_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Jit(JitPolicy::full()),
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(shards),
        )
        .expect("parallel run succeeds");
        assert!(
            output::same_results(&reference.results, &parallel.results),
            "sharded JIT at {} shards diverged from REF: missing {}, extra {}",
            shards,
            output::missing_from(&reference.results, &parallel.results).len(),
            output::missing_from(&parallel.results, &reference.results).len(),
        );
        assert!(!output::has_duplicates(&parallel.results));
    }
}

#[test]
fn bounded_watermark_clock_pins_jit_exactly_at_every_shard_count() {
    // Under the strict policy, sharded JIT can differ from single-threaded
    // JIT at the expiry margin (per-shard suppression state). The bounded
    // disorder policy replaces per-arrival expiry with watermark-driven
    // expiry, which is identical on every backend — so JIT equality becomes
    // exact at every shard count even with windows expiring mid-stream.
    let spec = spec(4, 7).with_duration(Duration::from_secs(150));
    let shape = PlanShape::bushy(4);
    let lateness = Duration::from_secs(3);
    let trace = WorkloadGenerator::generate(&spec);
    let events = DisorderSpec::new(0.05, lateness, 13).apply(&trace);

    let run = |builder: EngineBuilder| {
        let mut session = builder.build().unwrap().session().unwrap();
        for event in &events {
            let _ = session.push_event(event.clone()).unwrap();
        }
        session.finish().unwrap()
    };
    let builder = Engine::builder()
        .workload(&spec, &shape)
        .mode(ExecutionMode::Jit(JitPolicy::full()))
        .disorder(DisorderPolicy::Bounded(lateness));
    let single = run(builder.clone());
    assert!(single.results_count > 0);
    assert!(
        single.snapshot.stats.purged_tuples > 0,
        "expiry must be active for this test to pin anything new"
    );
    for shards in SHARD_COUNTS {
        let parallel = run(builder.clone().sharded(RuntimeConfig::with_shards(shards)));
        assert!(
            output::same_results(&single.results, &parallel.results),
            "bounded JIT at {} shards diverged: missing {}, extra {}",
            shards,
            output::missing_from(&single.results, &parallel.results).len(),
            output::missing_from(&parallel.results, &single.results).len(),
        );
        assert_eq!(parallel.results_count, single.results_count);
        assert!(!output::has_duplicates(&parallel.results));
        assert!(output::is_temporally_ordered(&parallel.results));
    }
}

#[test]
fn parallel_runs_are_deterministic() {
    let spec = spec(3, 99);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let run = || {
        run_parallel_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Ref,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(4)
                .with_batch_size(3)
                .with_channel_capacity(2),
        )
        .expect("parallel run succeeds")
    };
    let first = run();
    let second = run();
    // Thread interleaving must not leak into the output: the merged result
    // sequence is identical run to run.
    let keys = |o: &jit_dsms::runtime::ParallelOutcome| -> Vec<_> {
        o.results.iter().map(|t| t.key()).collect()
    };
    assert_eq!(keys(&first), keys(&second));
    assert_eq!(first.results_count, second.results_count);
    assert_eq!(
        first.snapshot.stats.results_emitted,
        second.snapshot.stats.results_emitted
    );
}

#[test]
fn batching_knobs_do_not_change_results() {
    let spec = spec(3, 5);
    let shape = PlanShape::left_deep(3);
    let trace = WorkloadGenerator::generate(&spec);
    let baseline = run_parallel_trace(
        &trace,
        &spec,
        &shape,
        ExecutionMode::Ref,
        ExecutorConfig::default(),
        RuntimeConfig::with_shards(2),
    )
    .expect("parallel run succeeds");
    for (batch, capacity) in [(1, 1), (7, 2), (256, 64)] {
        let outcome = run_parallel_trace(
            &trace,
            &spec,
            &shape,
            ExecutionMode::Ref,
            ExecutorConfig::default(),
            RuntimeConfig::with_shards(2)
                .with_batch_size(batch)
                .with_channel_capacity(capacity),
        )
        .expect("parallel run succeeds");
        assert!(output::same_results(&baseline.results, &outcome.results));
        assert!(output::is_temporally_ordered(&outcome.results));
    }
}
