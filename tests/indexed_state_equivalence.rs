//! Indexed vs scanned operator states must be observably identical except
//! for probe cost: same ordered result stream, same byte accounting, same
//! purge counts — across REF and JIT modes and across both backends — while
//! examining far fewer candidate pairs (the acceptance bar on the paper's
//! 3-source clique workload is a ≥ 10× `probe_pairs` reduction).

use jit_dsms::prelude::*;
use proptest::prelude::*;

/// Run one (mode, index-mode, batch-policy) combination over a shared trace.
fn run_config(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    trace: &Trace,
    mode: ExecutionMode,
    index: StateIndexMode,
    shards: Option<usize>,
    batch: BatchPolicy,
) -> EngineOutcome {
    let mut builder = Engine::builder()
        .workload(spec, shape)
        .mode(mode)
        .state_index(index)
        .batch_policy(batch);
    if let Some(shards) = shards {
        builder = builder.sharded(RuntimeConfig::with_shards(shards));
    }
    builder
        .build()
        .expect("engine builds")
        .run_trace(trace)
        .expect("trace runs")
}

/// Run one (mode, index-mode) combination over a shared trace.
fn run_with_index(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    trace: &Trace,
    mode: ExecutionMode,
    index: StateIndexMode,
    shards: Option<usize>,
) -> EngineOutcome {
    run_config(
        spec,
        shape,
        trace,
        mode,
        index,
        shards,
        BatchPolicy::default(),
    )
}

/// Everything that must not change when the index layer switches on.
fn assert_observably_equal(scan: &EngineOutcome, hashed: &EngineOutcome, label: &str) {
    assert_eq!(
        scan.results, hashed.results,
        "{label}: result streams must be identical (content and order)"
    );
    assert_eq!(scan.results_count, hashed.results_count, "{label}: counts");
    assert_eq!(
        scan.snapshot.stats.purged_tuples, hashed.snapshot.stats.purged_tuples,
        "{label}: purge counts"
    );
    assert_eq!(
        scan.snapshot.stats.state_insertions, hashed.snapshot.stats.state_insertions,
        "{label}: state insertions"
    );
    assert_eq!(
        scan.snapshot.stats.results_emitted, hashed.snapshot.stats.results_emitted,
        "{label}: results emitted"
    );
    // Byte accounting: index bookkeeping is never charged, so the
    // analytical memory trajectory is identical.
    assert_eq!(
        scan.snapshot.peak_memory_bytes, hashed.snapshot.peak_memory_bytes,
        "{label}: peak memory"
    );
    assert_eq!(
        scan.snapshot.final_memory_bytes, hashed.snapshot.final_memory_bytes,
        "{label}: final memory"
    );
    assert!(
        hashed.snapshot.stats.probe_pairs <= scan.snapshot.stats.probe_pairs,
        "{label}: indexed probing must not examine more pairs ({} > {})",
        hashed.snapshot.stats.probe_pairs,
        scan.snapshot.stats.probe_pairs
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random equi-join workloads through indexed vs scan states, REF and
    /// JIT, including the expiring regime (window shorter than the trace)
    /// so ordered expiry is exercised against the retain-scan semantics.
    #[test]
    fn random_workloads_indexed_equals_scan(
        sources in 2usize..=3,
        dmax in 3u64..=15,
        window_s in 40u64..=160,
        duration_s in 60u64..=140,
        seed in 0u64..10_000,
        left_deep in proptest::bool::ANY,
    ) {
        let spec = WorkloadSpec::bushy_default()
            .with_sources(sources)
            .with_window_minutes(window_s as f64 / 60.0)
            .with_rate(1.5)
            .with_dmax(dmax)
            .with_duration(Duration::from_secs(duration_s))
            .with_seed(seed);
        let shape = if left_deep || sources < 3 {
            PlanShape::left_deep(sources)
        } else {
            PlanShape::bushy(sources)
        };
        let trace = WorkloadGenerator::generate(&spec);
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            let scan =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, None);
            let hashed =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, None);
            assert_observably_equal(&scan, &hashed, mode.label());
        }
    }
}

/// The paper's 3-source clique figure workload, shortened: indexed states
/// must cut `probe_pairs` by at least 10× with byte-identical result sets,
/// in REF and JIT modes, on the single-threaded and the sharded backend.
#[test]
fn clique3_indexed_probes_are_10x_cheaper_on_both_backends() {
    // The figure workload's dmax = 200 produces almost no 3-way matches in
    // a trace short enough for a test; dmax = 40 keeps the same clique
    // structure with enough matches to compare result streams.
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(40)
        .with_duration(Duration::from_mins(3))
        .with_seed(20080415);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    // The 3-source clique is not key-partitionable, so the sharded backend
    // runs single-sharded (the general multi-shard case is covered by
    // `sharded_keyed_workload_indexed_equals_scan` below).
    for shards in [None, Some(1)] {
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, shards);
            let hashed =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, shards);
            assert_observably_equal(&scan, &hashed, mode.label());
            assert!(scan.results_count > 0, "workload must produce results");
            let (scanned, indexed) = (
                scan.snapshot.stats.probe_pairs,
                hashed.snapshot.stats.probe_pairs,
            );
            assert!(
                indexed * 10 <= scanned,
                "{} (shards {shards:?}): expected >= 10x probe reduction, got {scanned} -> {indexed}",
                mode.label(),
            );
        }
    }
}

/// Multi-shard coverage: a key-partitionable workload behaves identically
/// under indexed and scanned states on 4 shards.
#[test]
fn sharded_keyed_workload_indexed_equals_scan() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_shared_key()
        .with_dmax(40)
        .with_duration(Duration::from_mins(2))
        .with_seed(7);
    let shape = PlanShape::left_deep(3);
    let trace = WorkloadGenerator::generate(&spec);
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, Some(4));
        let hashed = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, Some(4));
        assert_observably_equal(&scan, &hashed, mode.label());
    }
}

/// Everything that must not change when the columnar batch plane switches
/// on: byte-identical ordered results, identical workload counters (probes,
/// predicate evaluations, purges, insertions), identical final bytes, and —
/// for JIT — identical feedback behaviour. Peak memory may only shrink
/// (batch mode samples once per block instead of once per task, so it
/// observes a subset of the same trajectory).
fn assert_batch_equivalent(tuple: &EngineOutcome, batched: &EngineOutcome, label: &str) {
    assert_eq!(
        tuple.results, batched.results,
        "{label}: result streams must be identical (content and order)"
    );
    assert_eq!(
        tuple.results_count, batched.results_count,
        "{label}: counts"
    );
    assert_eq!(batched.order_violations, 0, "{label}: temporal order");
    let (t, b) = (&tuple.snapshot.stats, &batched.snapshot.stats);
    assert_eq!(t.tuples_arrived, b.tuples_arrived, "{label}: arrivals");
    assert_eq!(t.probe_pairs, b.probe_pairs, "{label}: probe pairs");
    assert_eq!(
        t.predicate_evals, b.predicate_evals,
        "{label}: predicate evals"
    );
    assert_eq!(t.purged_tuples, b.purged_tuples, "{label}: purge counts");
    assert_eq!(
        t.state_insertions, b.state_insertions,
        "{label}: insertions"
    );
    assert_eq!(t.state_probes, b.state_probes, "{label}: state probes");
    assert_eq!(
        t.results_emitted, b.results_emitted,
        "{label}: results emitted"
    );
    assert_eq!(t.mns_detected, b.mns_detected, "{label}: MNS detection");
    assert_eq!(
        t.feedback_suspend, b.feedback_suspend,
        "{label}: suspensions"
    );
    assert_eq!(t.feedback_resume, b.feedback_resume, "{label}: resumptions");
    assert_eq!(
        t.blacklisted_tuples, b.blacklisted_tuples,
        "{label}: blacklist moves"
    );
    assert_eq!(t.resumed_tuples, b.resumed_tuples, "{label}: restores");
    assert_eq!(
        t.intermediate_suppressed, b.intermediate_suppressed,
        "{label}: suppression"
    );
    assert_eq!(
        tuple.snapshot.final_memory_bytes, batched.snapshot.final_memory_bytes,
        "{label}: final memory"
    );
    assert!(
        batched.snapshot.peak_memory_bytes <= tuple.snapshot.peak_memory_bytes,
        "{label}: batch-mode peak memory must not exceed tuple mode ({} > {})",
        batched.snapshot.peak_memory_bytes,
        tuple.snapshot.peak_memory_bytes
    );
}

/// The batch policies the equivalence axis sweeps: small batches (every
/// block boundary exercised), large batches (whole-trace blocks), and a
/// delay-bounded policy (flushes mid-count on event time).
fn batch_policies() -> [BatchPolicy; 3] {
    [
        BatchPolicy::rows(4),
        BatchPolicy::rows(64),
        BatchPolicy::rows(1 << 20).with_max_delay(Duration::from_secs(10)),
    ]
}

/// The batch plane must be invisible in everything but speed, on the
/// paper's 3-source clique workload: REF and JIT, both state index modes,
/// single-threaded and (single-shard) sharded backends, across all batch
/// policies.
#[test]
fn batch_plane_is_observably_equivalent_on_clique3() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(40)
        .with_duration(Duration::from_mins(3))
        .with_seed(20080415);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    for shards in [None, Some(1)] {
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            for index in [StateIndexMode::Hashed, StateIndexMode::Scan] {
                let tuple = run_config(
                    &spec,
                    &shape,
                    &trace,
                    mode,
                    index,
                    shards,
                    BatchPolicy::default(),
                );
                assert!(tuple.results_count > 0, "workload must produce results");
                for policy in batch_policies() {
                    let batched = run_config(&spec, &shape, &trace, mode, index, shards, policy);
                    let label = format!(
                        "{} shards={shards:?} {index:?} batch={policy:?}",
                        mode.label()
                    );
                    assert_batch_equivalent(&tuple, &batched, &label);
                }
            }
        }
    }
}

/// Multi-shard coverage for the batch plane: on the key-partitionable
/// workload, 4-shard vectorized ingestion matches 4-shard tuple ingestion
/// exactly.
#[test]
fn batch_plane_is_observably_equivalent_on_4_shards() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_shared_key()
        .with_dmax(40)
        .with_duration(Duration::from_mins(2))
        .with_seed(7);
    let shape = PlanShape::left_deep(3);
    let trace = WorkloadGenerator::generate(&spec);
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let tuple = run_config(
            &spec,
            &shape,
            &trace,
            mode,
            StateIndexMode::Hashed,
            Some(4),
            BatchPolicy::default(),
        );
        assert!(tuple.results_count > 0, "workload must produce results");
        for policy in batch_policies() {
            let batched = run_config(
                &spec,
                &shape,
                &trace,
                mode,
                StateIndexMode::Hashed,
                Some(4),
                policy,
            );
            let label = format!("{} 4 shards batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &batched, &label);
        }
    }
}

/// JIT feedback behaviour (suppression, blacklisting, resumption) must be
/// bit-for-bit identical between the two probe paths — the index only
/// changes how candidates are found, never which MNSs are detected.
#[test]
fn jit_feedback_counters_match_between_index_modes() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(25)
        .with_window_minutes(1.0)
        .with_duration(Duration::from_mins(3))
        .with_seed(99);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let mode = ExecutionMode::Jit(JitPolicy::full());
    let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, None);
    let hashed = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, None);
    assert_observably_equal(&scan, &hashed, "JIT");
    let (s, h) = (&scan.snapshot.stats, &hashed.snapshot.stats);
    assert!(s.mns_detected > 0, "workload must trigger MNS detection");
    assert_eq!(s.mns_detected, h.mns_detected, "MNS detection");
    assert_eq!(s.feedback_suspend, h.feedback_suspend, "suspensions");
    assert_eq!(s.feedback_resume, h.feedback_resume, "resumptions");
    assert_eq!(
        s.blacklisted_tuples, h.blacklisted_tuples,
        "blacklist moves"
    );
    assert_eq!(s.resumed_tuples, h.resumed_tuples, "restores");
    assert_eq!(
        s.intermediate_suppressed, h.intermediate_suppressed,
        "suppression"
    );
}
