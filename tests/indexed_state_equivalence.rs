//! Indexed vs scanned operator states must be observably identical except
//! for probe cost: same ordered result stream, same byte accounting, same
//! purge counts — across REF and JIT modes and across both backends — while
//! examining far fewer candidate pairs (the acceptance bar on the paper's
//! 3-source clique workload is a ≥ 10× `probe_pairs` reduction).

use jit_dsms::prelude::*;
use proptest::prelude::*;

/// Run one (mode, index-mode, batch-policy) combination over a shared trace.
fn run_config(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    trace: &Trace,
    mode: ExecutionMode,
    index: StateIndexMode,
    shards: Option<usize>,
    batch: BatchPolicy,
) -> EngineOutcome {
    let mut builder = Engine::builder()
        .workload(spec, shape)
        .mode(mode)
        .state_index(index)
        .batch_policy(batch);
    if let Some(shards) = shards {
        builder = builder.sharded(RuntimeConfig::with_shards(shards));
    }
    builder
        .build()
        .expect("engine builds")
        .run_trace(trace)
        .expect("trace runs")
}

/// Run one (mode, index-mode) combination over a shared trace.
fn run_with_index(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    trace: &Trace,
    mode: ExecutionMode,
    index: StateIndexMode,
    shards: Option<usize>,
) -> EngineOutcome {
    run_config(
        spec,
        shape,
        trace,
        mode,
        index,
        shards,
        BatchPolicy::default(),
    )
}

/// Everything that must not change when the index layer switches on.
fn assert_observably_equal(scan: &EngineOutcome, hashed: &EngineOutcome, label: &str) {
    assert_eq!(
        scan.results, hashed.results,
        "{label}: result streams must be identical (content and order)"
    );
    assert_eq!(scan.results_count, hashed.results_count, "{label}: counts");
    assert_eq!(
        scan.snapshot.stats.purged_tuples, hashed.snapshot.stats.purged_tuples,
        "{label}: purge counts"
    );
    assert_eq!(
        scan.snapshot.stats.state_insertions, hashed.snapshot.stats.state_insertions,
        "{label}: state insertions"
    );
    assert_eq!(
        scan.snapshot.stats.results_emitted, hashed.snapshot.stats.results_emitted,
        "{label}: results emitted"
    );
    // Byte accounting: index bookkeeping is never charged, so the
    // analytical memory trajectory is identical.
    assert_eq!(
        scan.snapshot.peak_memory_bytes, hashed.snapshot.peak_memory_bytes,
        "{label}: peak memory"
    );
    assert_eq!(
        scan.snapshot.final_memory_bytes, hashed.snapshot.final_memory_bytes,
        "{label}: final memory"
    );
    assert!(
        hashed.snapshot.stats.probe_pairs <= scan.snapshot.stats.probe_pairs,
        "{label}: indexed probing must not examine more pairs ({} > {})",
        hashed.snapshot.stats.probe_pairs,
        scan.snapshot.stats.probe_pairs
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random equi-join workloads through indexed vs scan states, REF and
    /// JIT, including the expiring regime (window shorter than the trace)
    /// so ordered expiry is exercised against the retain-scan semantics.
    #[test]
    fn random_workloads_indexed_equals_scan(
        sources in 2usize..=3,
        dmax in 3u64..=15,
        window_s in 40u64..=160,
        duration_s in 60u64..=140,
        seed in 0u64..10_000,
        left_deep in proptest::bool::ANY,
    ) {
        let spec = WorkloadSpec::bushy_default()
            .with_sources(sources)
            .with_window_minutes(window_s as f64 / 60.0)
            .with_rate(1.5)
            .with_dmax(dmax)
            .with_duration(Duration::from_secs(duration_s))
            .with_seed(seed);
        let shape = if left_deep || sources < 3 {
            PlanShape::left_deep(sources)
        } else {
            PlanShape::bushy(sources)
        };
        let trace = WorkloadGenerator::generate(&spec);
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            let scan =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, None);
            let hashed =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, None);
            assert_observably_equal(&scan, &hashed, mode.label());
        }
    }
}

/// The paper's 3-source clique figure workload, shortened: indexed states
/// must cut `probe_pairs` by at least 10× with byte-identical result sets,
/// in REF and JIT modes, on the single-threaded and the sharded backend.
#[test]
fn clique3_indexed_probes_are_10x_cheaper_on_both_backends() {
    // The figure workload's dmax = 200 produces almost no 3-way matches in
    // a trace short enough for a test; dmax = 40 keeps the same clique
    // structure with enough matches to compare result streams.
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(40)
        .with_duration(Duration::from_mins(3))
        .with_seed(20080415);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    // The 3-source clique is not key-partitionable, so the sharded backend
    // runs single-sharded (the general multi-shard case is covered by
    // `sharded_keyed_workload_indexed_equals_scan` below).
    for shards in [None, Some(1)] {
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, shards);
            let hashed =
                run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, shards);
            assert_observably_equal(&scan, &hashed, mode.label());
            assert!(scan.results_count > 0, "workload must produce results");
            let (scanned, indexed) = (
                scan.snapshot.stats.probe_pairs,
                hashed.snapshot.stats.probe_pairs,
            );
            assert!(
                indexed * 10 <= scanned,
                "{} (shards {shards:?}): expected >= 10x probe reduction, got {scanned} -> {indexed}",
                mode.label(),
            );
        }
    }
}

/// Multi-shard coverage: a key-partitionable workload behaves identically
/// under indexed and scanned states on 4 shards.
#[test]
fn sharded_keyed_workload_indexed_equals_scan() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_shared_key()
        .with_dmax(40)
        .with_duration(Duration::from_mins(2))
        .with_seed(7);
    let shape = PlanShape::left_deep(3);
    let trace = WorkloadGenerator::generate(&spec);
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, Some(4));
        let hashed = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, Some(4));
        assert_observably_equal(&scan, &hashed, mode.label());
    }
}

/// Everything that must not change when the columnar batch plane switches
/// on: byte-identical ordered results, identical workload counters (probes,
/// predicate evaluations, purges, insertions), identical final bytes, and —
/// for JIT — identical feedback behaviour. Peak memory may only shrink
/// (batch mode samples once per block instead of once per task, so it
/// observes a subset of the same trajectory).
fn assert_batch_equivalent(tuple: &EngineOutcome, batched: &EngineOutcome, label: &str) {
    assert_eq!(
        tuple.results, batched.results,
        "{label}: result streams must be identical (content and order)"
    );
    assert_eq!(
        tuple.results_count, batched.results_count,
        "{label}: counts"
    );
    assert_eq!(batched.order_violations, 0, "{label}: temporal order");
    let (t, b) = (&tuple.snapshot.stats, &batched.snapshot.stats);
    assert_eq!(t.tuples_arrived, b.tuples_arrived, "{label}: arrivals");
    assert_eq!(t.probe_pairs, b.probe_pairs, "{label}: probe pairs");
    assert_eq!(
        t.predicate_evals, b.predicate_evals,
        "{label}: predicate evals"
    );
    assert_eq!(t.purged_tuples, b.purged_tuples, "{label}: purge counts");
    assert_eq!(
        t.state_insertions, b.state_insertions,
        "{label}: insertions"
    );
    assert_eq!(t.state_probes, b.state_probes, "{label}: state probes");
    assert_eq!(
        t.results_emitted, b.results_emitted,
        "{label}: results emitted"
    );
    assert_eq!(t.mns_detected, b.mns_detected, "{label}: MNS detection");
    assert_eq!(
        t.feedback_suspend, b.feedback_suspend,
        "{label}: suspensions"
    );
    assert_eq!(t.feedback_resume, b.feedback_resume, "{label}: resumptions");
    assert_eq!(
        t.blacklisted_tuples, b.blacklisted_tuples,
        "{label}: blacklist moves"
    );
    assert_eq!(t.resumed_tuples, b.resumed_tuples, "{label}: restores");
    assert_eq!(
        t.intermediate_suppressed, b.intermediate_suppressed,
        "{label}: suppression"
    );
    assert_eq!(
        tuple.snapshot.final_memory_bytes, batched.snapshot.final_memory_bytes,
        "{label}: final memory"
    );
    assert!(
        batched.snapshot.peak_memory_bytes <= tuple.snapshot.peak_memory_bytes,
        "{label}: batch-mode peak memory must not exceed tuple mode ({} > {})",
        batched.snapshot.peak_memory_bytes,
        tuple.snapshot.peak_memory_bytes
    );
}

/// The batch policies the equivalence axis sweeps: small batches (every
/// block boundary exercised), large batches (whole-trace blocks), and a
/// delay-bounded policy (flushes mid-count on event time).
fn batch_policies() -> [BatchPolicy; 3] {
    [
        BatchPolicy::rows(4),
        BatchPolicy::rows(64),
        BatchPolicy::rows(1 << 20).with_max_delay(Duration::from_secs(10)),
    ]
}

/// The batch plane must be invisible in everything but speed, on the
/// paper's 3-source clique workload: REF and JIT, both state index modes,
/// single-threaded and (single-shard) sharded backends, across all batch
/// policies.
#[test]
fn batch_plane_is_observably_equivalent_on_clique3() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(40)
        .with_duration(Duration::from_mins(3))
        .with_seed(20080415);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    for shards in [None, Some(1)] {
        for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
            for index in [StateIndexMode::Hashed, StateIndexMode::Scan] {
                let tuple = run_config(
                    &spec,
                    &shape,
                    &trace,
                    mode,
                    index,
                    shards,
                    BatchPolicy::default(),
                );
                assert!(tuple.results_count > 0, "workload must produce results");
                for policy in batch_policies() {
                    let batched = run_config(&spec, &shape, &trace, mode, index, shards, policy);
                    let label = format!(
                        "{} shards={shards:?} {index:?} batch={policy:?}",
                        mode.label()
                    );
                    assert_batch_equivalent(&tuple, &batched, &label);
                }
            }
        }
    }
}

/// Multi-shard coverage for the batch plane: on the key-partitionable
/// workload, 4-shard vectorized ingestion matches 4-shard tuple ingestion
/// exactly.
#[test]
fn batch_plane_is_observably_equivalent_on_4_shards() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_shared_key()
        .with_dmax(40)
        .with_duration(Duration::from_mins(2))
        .with_seed(7);
    let shape = PlanShape::left_deep(3);
    let trace = WorkloadGenerator::generate(&spec);
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let tuple = run_config(
            &spec,
            &shape,
            &trace,
            mode,
            StateIndexMode::Hashed,
            Some(4),
            BatchPolicy::default(),
        );
        assert!(tuple.results_count > 0, "workload must produce results");
        for policy in batch_policies() {
            let batched = run_config(
                &spec,
                &shape,
                &trace,
                mode,
                StateIndexMode::Hashed,
                Some(4),
                policy,
            );
            let label = format!("{} 4 shards batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &batched, &label);
        }
    }
}

/// Push a fixed arrival script through a CQL query at one batch policy.
/// Sequence numbers are assigned per source in push order.
fn run_cql_pushes(
    cql: &str,
    mode: ExecutionMode,
    batch: BatchPolicy,
    pushes: &[(u16, u64, Vec<Value>)],
) -> EngineOutcome {
    let engine = Engine::builder()
        .query_cql(cql)
        .mode(mode)
        .batch_policy(batch)
        .build()
        .expect("CQL engine builds");
    let mut session = engine.session().expect("session opens");
    let mut seqs = std::collections::HashMap::new();
    for (source, ts_ms, values) in pushes {
        let seq = seqs.entry(*source).or_insert(0u64);
        let tuple = std::sync::Arc::new(BaseTuple::new(
            SourceId(*source),
            *seq,
            Timestamp::from_millis(*ts_ms),
            values.clone(),
        ));
        *seq += 1;
        let _ = session
            .push(SourceId(*source), tuple)
            .expect("push accepted");
    }
    session.finish().expect("run finishes")
}

/// The batch plane must stay invisible when columns are strings or widen
/// mid-batch: source A's key column is pure `Utf8`, source B's mixes `Int`
/// and `Str` rows so its columnar projection widens to the general `Values`
/// representation. The typed, widened and row-fallback kernel paths must
/// all agree with tuple-at-a-time execution.
#[test]
fn batch_plane_handles_utf8_and_widened_columns() {
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] WHERE A.x = B.x";
    let mut pushes: Vec<(u16, u64, Vec<Value>)> = Vec::new();
    for i in 0..30u64 {
        pushes.push((0, i * 500, vec![Value::str(format!("k{}", i % 5))]));
        let b_key = if i % 3 == 0 {
            // An Int row in an otherwise-Str column widens B's projection.
            Value::int((i % 5) as i64)
        } else {
            Value::str(format!("k{}", i % 5))
        };
        pushes.push((1, i * 500 + 10, vec![b_key]));
    }
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let tuple = run_cql_pushes(cql, mode, BatchPolicy::default(), &pushes);
        assert!(
            tuple.results_count > 0,
            "string keys must join (str = str only)"
        );
        for policy in batch_policies() {
            let batched = run_cql_pushes(cql, mode, policy, &pushes);
            let label = format!("{} utf8/widened batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &batched, &label);
        }
    }
}

/// CQL constant filters on the batch axis: the vectorized selection mask
/// must pass exactly the rows the per-tuple predicate passes — including
/// the all-rows-masked extreme, where every block drops entirely.
#[test]
fn batch_plane_applies_cql_constant_filters() {
    let pushes: Vec<(u16, u64, Vec<Value>)> = (1..=10i64)
        .flat_map(|v| {
            [
                (0u16, v as u64 * 1_000, vec![Value::int(v)]),
                (1u16, v as u64 * 1_000 + 10, vec![Value::int(v)]),
            ]
        })
        .collect();
    let filtered = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
                    WHERE A.x = B.x AND A.x > 5";
    let nothing_passes = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
                          WHERE A.x = B.x AND A.x > 1000";
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let tuple = run_cql_pushes(filtered, mode, BatchPolicy::default(), &pushes);
        assert_eq!(tuple.results_count, 5, "{}: v in 6..=10", mode.label());
        for policy in batch_policies() {
            let batched = run_cql_pushes(filtered, mode, policy, &pushes);
            let label = format!("{} filtered batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &batched, &label);
        }
        // All rows masked: the selection rejects every arrival, so whole
        // blocks drop without a single per-row dispatch.
        let tuple = run_cql_pushes(nothing_passes, mode, BatchPolicy::default(), &pushes);
        assert_eq!(tuple.results_count, 0);
        for policy in batch_policies() {
            let batched = run_cql_pushes(nothing_passes, mode, policy, &pushes);
            let label = format!("{} all-masked batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &batched, &label);
        }
    }
}

/// Degenerate blocks: an empty stream (end-of-stream flush with nothing
/// buffered) and a single-row frontier (one arrival flushed alone) must run
/// the batch plane without tripping any kernel edge case.
#[test]
fn batch_plane_handles_degenerate_blocks() {
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] WHERE A.x = B.x";
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        for policy in batch_policies() {
            // Empty stream: nothing arrives, nothing results.
            let empty = run_cql_pushes(cql, mode, policy, &[]);
            assert_eq!(empty.results_count, 0);
            assert_eq!(empty.snapshot.stats.tuples_arrived, 0);

            // Single-row frontier: one arrival, flushed by finish.
            let single_pushes = vec![(0u16, 1_000u64, vec![Value::int(7)])];
            let tuple = run_cql_pushes(cql, mode, BatchPolicy::default(), &single_pushes);
            let single = run_cql_pushes(cql, mode, policy, &single_pushes);
            let label = format!("{} single-row batch={policy:?}", mode.label());
            assert_batch_equivalent(&tuple, &single, &label);
        }
    }
}

/// JIT feedback behaviour (suppression, blacklisting, resumption) must be
/// bit-for-bit identical between the two probe paths — the index only
/// changes how candidates are found, never which MNSs are detected.
#[test]
fn jit_feedback_counters_match_between_index_modes() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_dmax(25)
        .with_window_minutes(1.0)
        .with_duration(Duration::from_mins(3))
        .with_seed(99);
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let mode = ExecutionMode::Jit(JitPolicy::full());
    let scan = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Scan, None);
    let hashed = run_with_index(&spec, &shape, &trace, mode, StateIndexMode::Hashed, None);
    assert_observably_equal(&scan, &hashed, "JIT");
    let (s, h) = (&scan.snapshot.stats, &hashed.snapshot.stats);
    assert!(s.mns_detected > 0, "workload must trigger MNS detection");
    assert_eq!(s.mns_detected, h.mns_detected, "MNS detection");
    assert_eq!(s.feedback_suspend, h.feedback_suspend, "suspensions");
    assert_eq!(s.feedback_resume, h.feedback_resume, "resumptions");
    assert_eq!(
        s.blacklisted_tuples, h.blacklisted_tuples,
        "blacklist moves"
    );
    assert_eq!(s.resumed_tuples, h.resumed_tuples, "restores");
    assert_eq!(
        s.intermediate_suppressed, h.intermediate_suppressed,
        "suppression"
    );
}
