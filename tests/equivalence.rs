//! Cross-crate correctness: JIT and DOE must produce exactly the same results
//! as REF, with no duplicates, across plan shapes, policies and randomised
//! workloads. (Temporal order is asserted for REF; JIT may re-emit a
//! previously suppressed result late, after a resumption — a documented
//! deviation that does not change the result set.)
//!
//! Two regimes are exercised:
//!
//! * **No-expiry workloads** (trace shorter than the window): every execution
//!   mode must produce *exactly* the same result multiset — there is no
//!   window corner case to hide behind.
//! * **Expiring workloads**: JIT's results must be a subset of REF's, free of
//!   duplicates, and any result REF has but JIT lacks must contain a pair of
//!   base tuples at least a full window apart (the X-Join artefact discussed
//!   in DESIGN.md: REF "freezes" expired components inside stored
//!   intermediate results, while JIT regenerates them only while all
//!   components are mutually alive).

use jit_dsms::prelude::*;
use proptest::prelude::*;

fn run_modes(
    spec: &WorkloadSpec,
    shape: &PlanShape,
    modes: &[ExecutionMode],
) -> Vec<EngineOutcome> {
    let trace = WorkloadGenerator::generate(spec);
    Engine::builder()
        .workload(spec, shape)
        .compare(&trace, modes)
        .expect("engine builds")
}

fn all_modes() -> Vec<ExecutionMode> {
    vec![
        ExecutionMode::Ref,
        ExecutionMode::Doe,
        ExecutionMode::Jit(JitPolicy::full()),
        ExecutionMode::Jit(JitPolicy::bloom()),
        ExecutionMode::Jit(JitPolicy::full().without_similar_capture()),
        ExecutionMode::Jit(JitPolicy::full().without_propagation()),
    ]
}

/// Every pair of base tuples in `t` is strictly within the window.
fn strictly_within_window(t: &Tuple, window: Window) -> bool {
    t.ts().saturating_sub(t.min_ts()) < window.length
}

#[test]
fn no_expiry_workload_all_modes_agree_exactly() {
    // 2 minutes of stream, 30-minute window: nothing ever expires.
    let spec = WorkloadSpec::bushy_default()
        .with_sources(4)
        .with_window_minutes(30.0)
        .with_rate(1.0)
        .with_dmax(12)
        .with_duration(Duration::from_secs(90))
        .with_seed(101);
    for shape in [PlanShape::bushy(4), PlanShape::left_deep(4)] {
        let outcomes = run_modes(&spec, &shape, &all_modes());
        let reference = &outcomes[0];
        assert!(reference.results_count > 0, "workload must produce results");
        for other in &outcomes[1..] {
            assert!(
                output::same_results(&reference.results, &other.results),
                "{} differs from REF on {}: missing {:?} / extra {:?}",
                other.mode_label,
                shape.label(),
                output::missing_from(&reference.results, &other.results).len(),
                output::missing_from(&other.results, &reference.results).len(),
            );
            assert!(!output::has_duplicates(&other.results));
            // Temporal order is only guaranteed for REF: JIT may re-emit a
            // suppressed result after results with larger timestamps once a
            // resumption arrives (see DESIGN.md, "known deviations"). The
            // result *set* is identical, which is what we assert above.
        }
    }
}

#[test]
fn expiring_workload_jit_is_duplicate_free_subset() {
    let spec = WorkloadSpec::bushy_default()
        .with_sources(3)
        .with_window_minutes(1.0)
        .with_rate(2.0)
        .with_dmax(8)
        .with_duration(Duration::from_secs(300))
        .with_seed(77);
    let window = spec.window();
    let shape = PlanShape::left_deep(3);
    let outcomes = run_modes(
        &spec,
        &shape,
        &[ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())],
    );
    let (ref_run, jit_run) = (&outcomes[0], &outcomes[1]);
    assert!(ref_run.results_count > 0);
    assert!(!output::has_duplicates(&jit_run.results));
    // JIT ⊆ REF.
    assert!(
        output::missing_from(&jit_run.results, &ref_run.results).is_empty(),
        "JIT produced results REF does not have"
    );
    // Anything REF-only must involve an expired component pair.
    let jit_keys: std::collections::BTreeSet<_> = jit_run.results.iter().map(|t| t.key()).collect();
    for result in &ref_run.results {
        if !jit_keys.contains(&result.key()) {
            assert!(
                !strictly_within_window(result, window),
                "REF-only result {} has all components strictly within the window",
                result.key()
            );
        }
    }
    // Conversely, every strictly-in-window REF result is found by JIT.
    for result in &ref_run.results {
        if strictly_within_window(result, window) {
            assert!(
                jit_keys.contains(&result.key()),
                "JIT missed in-window result {}",
                result.key()
            );
        }
    }
}

#[test]
fn results_are_window_valid_and_ordered() {
    let spec = WorkloadSpec::leftdeep_default()
        .with_sources(4)
        .with_window_minutes(2.0)
        .with_rate(1.0)
        .with_dmax(12)
        .with_duration(Duration::from_secs(240))
        .with_seed(5);
    let shape = PlanShape::left_deep(4);
    let trace = WorkloadGenerator::generate(&spec);
    for mode in [ExecutionMode::Ref, ExecutionMode::Jit(JitPolicy::full())] {
        let outcome = Engine::builder()
            .workload(&spec, &shape)
            .mode(mode)
            .build()
            .unwrap()
            .run_trace(&trace)
            .unwrap();
        if matches!(mode, ExecutionMode::Ref) {
            // Prompt processing emits in timestamp order; JIT may re-emit a
            // suppressed result late (documented deviation).
            assert!(output::is_temporally_ordered(&outcome.results));
            assert_eq!(outcome.order_violations, 0);
        }
        // Every result's components pairwise within the *per-operator*
        // window; since the same window applies everywhere, max-min ≤ w.
        assert!(output::all_within_window(&outcome.results, spec.window()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Randomised no-expiry workloads: exact equality between REF, DOE and
    /// JIT for random source counts, selectivities, rates and shapes.
    #[test]
    fn prop_no_expiry_equivalence(
        seed in 0u64..1_000,
        n in 3usize..=4,
        dmax in 3u64..30,
        rate in 1u64..=2,
        bushy in proptest::bool::ANY,
        duration_s in 45u64..100,
    ) {
        let spec = WorkloadSpec::bushy_default()
            .with_sources(n)
            .with_window_minutes(60.0) // longer than any generated trace
            .with_rate(rate as f64)
            .with_dmax(dmax)
            .with_duration(Duration::from_secs(duration_s))
            .with_seed(seed);
        let shape = if bushy { PlanShape::bushy(n) } else { PlanShape::left_deep(n) };
        let outcomes = run_modes(&spec, &shape, &[
            ExecutionMode::Ref,
            ExecutionMode::Doe,
            ExecutionMode::Jit(JitPolicy::full()),
        ]);
        let reference = &outcomes[0];
        for other in &outcomes[1..] {
            prop_assert!(output::same_results(&reference.results, &other.results),
                "{} diverged from REF (missing {}, extra {})",
                other.mode_label,
                output::missing_from(&reference.results, &other.results).len(),
                output::missing_from(&other.results, &reference.results).len());
            prop_assert!(!output::has_duplicates(&other.results));
        }
    }

    /// Randomised expiring workloads: JIT stays a duplicate-free subset of
    /// REF and finds every strictly-in-window result.
    #[test]
    fn prop_expiring_subset(
        seed in 0u64..1_000,
        dmax in 4u64..20,
        window_s in 30u64..80,
    ) {
        let spec = WorkloadSpec::bushy_default()
            .with_sources(3)
            .with_window_minutes(window_s as f64 / 60.0)
            .with_rate(1.5)
            .with_dmax(dmax)
            .with_duration(Duration::from_secs(180))
            .with_seed(seed);
        let window = spec.window();
        let shape = PlanShape::left_deep(3);
        let outcomes = run_modes(&spec, &shape, &[
            ExecutionMode::Ref,
            ExecutionMode::Jit(JitPolicy::full()),
        ]);
        let (ref_run, jit_run) = (&outcomes[0], &outcomes[1]);
        prop_assert!(!output::has_duplicates(&jit_run.results));
        prop_assert!(output::missing_from(&jit_run.results, &ref_run.results).is_empty());
        let jit_keys: std::collections::BTreeSet<_> =
            jit_run.results.iter().map(|t| t.key()).collect();
        for result in &ref_run.results {
            if strictly_within_window(result, window) {
                prop_assert!(jit_keys.contains(&result.key()),
                    "JIT missed in-window result {}", result.key());
            }
        }
    }
}
