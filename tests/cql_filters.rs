//! Parse → engine → results round-trip for CQL constant filters
//! (`A.x > 200`): previously rejected with `Unsupported`, now wired into
//! tree plans as per-source selection operators.

use jit_dsms::prelude::*;
use std::sync::Arc;

fn base(source: u16, seq: u64, ts_ms: u64, val: i64) -> Arc<BaseTuple> {
    Arc::new(BaseTuple::new(
        SourceId(source),
        seq,
        Timestamp::from_millis(ts_ms),
        vec![Value::int(val)],
    ))
}

fn run_query(cql: &str, sharded: bool) -> EngineOutcome {
    let mut builder = Engine::builder().query_cql(cql);
    if sharded {
        // A.x = B.x is key-equality on column 0, statically shardable.
        builder = builder.sharded(RuntimeConfig::with_shards(2));
    }
    let engine = builder.build().expect("filtered CQL builds");
    let mut session = engine.session().expect("session opens");
    // Pairs (A, B) with equal values v = 1..=10 at increasing timestamps:
    // only v > 5 survives the filter, so exactly 5 joins remain.
    for v in 1..=10i64 {
        let ts = v as u64 * 1_000;
        let _ = session.push(SourceId(0), base(0, v as u64, ts, v)).unwrap();
        let _ = session
            .push(SourceId(1), base(1, v as u64, ts + 10, v))
            .unwrap();
    }
    session.finish().expect("run finishes")
}

#[test]
fn filtered_cql_builds_and_filters_results() {
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
               WHERE A.x = B.x AND A.x > 5";
    let outcome = run_query(cql, false);
    assert_eq!(outcome.results_count, 5);
    for result in &outcome.results {
        assert_eq!(result.num_parts(), 2);
        let a_val = result
            .value(ColumnRef::new(SourceId(0), 0))
            .expect("A component present");
        assert!(*a_val > Value::int(5), "filter must hold on every result");
    }
    // The same query without the filter keeps all ten joins.
    let unfiltered = run_query(
        "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] WHERE A.x = B.x",
        false,
    );
    assert_eq!(unfiltered.results_count, 10);
}

#[test]
fn filtered_cql_runs_on_the_sharded_backend() {
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
               WHERE A.x = B.x AND A.x > 5";
    let single = run_query(cql, false);
    let sharded = run_query(cql, true);
    assert_eq!(single.results_count, sharded.results_count);
    assert_eq!(single.results, sharded.results);
}

#[test]
fn filters_on_both_sources_compose() {
    // A.x > 2 AND B.x < 8 leaves v in 3..=7: five joins.
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
               WHERE A.x = B.x AND A.x > 2 AND B.x < 8";
    let outcome = run_query(cql, false);
    assert_eq!(outcome.results_count, 5);
}

#[test]
fn filtered_cql_works_in_jit_mode() {
    let cql = "SELECT * FROM A [RANGE 5 minutes], B [RANGE 5 minutes] \
               WHERE A.x = B.x AND A.x > 5";
    let engine = Engine::builder()
        .query_cql(cql)
        .mode(ExecutionMode::Jit(JitPolicy::full()))
        .build()
        .expect("JIT filtered engine builds");
    let mut session = engine.session().unwrap();
    for v in 1..=10i64 {
        let ts = v as u64 * 1_000;
        let _ = session.push(SourceId(0), base(0, v as u64, ts, v)).unwrap();
        let _ = session
            .push(SourceId(1), base(1, v as u64, ts + 10, v))
            .unwrap();
    }
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.results_count, 5);
}
