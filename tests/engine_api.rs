//! The unified `Engine`/`Session` API: cross-backend equivalence and typed
//! build-time rejection.
//!
//! The headline test drives the *same* pushed tuple sequence through both
//! `Backend` implementations — the single-threaded executor and the sharded
//! runtime at 1 and 4 shards — purely by builder configuration, and asserts
//! set-equal, timestamp-ordered results and matching steady-state metrics
//! against the legacy `QueryRuntime::run` path (which still drives the raw
//! executor directly, making it an independent oracle).

use jit_dsms::prelude::*;
use std::sync::Arc;

fn shared_key_spec() -> WorkloadSpec {
    parallel_workload(4, 16)
        .with_rate(1.0)
        .with_window_minutes(2.0)
        .with_duration(Duration::from_secs(120))
        .with_seed(4242)
}

/// Push `trace` tuple by tuple through an engine built from `builder`.
fn push_through(builder: EngineBuilder, trace: &Trace) -> EngineOutcome {
    let engine = builder.build().expect("engine builds");
    let mut session = engine.session().expect("session opens");
    for event in trace.iter() {
        let _ = session.push_event(event.clone()).expect("in-order push");
    }
    session.finish().expect("session finishes")
}

#[test]
fn same_pushed_sequence_through_both_backends_matches_legacy_runtime() {
    let spec = shared_key_spec();
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);

    // Legacy oracle: the pre-engine batch driver on the raw executor.
    let legacy = QueryRuntime::run_trace(
        &trace,
        &spec,
        &shape,
        ExecutionMode::Ref,
        ExecutorConfig::default(),
    )
    .expect("legacy plan builds");
    assert!(legacy.results_count > 0, "workload must produce results");

    let builder = Engine::builder().workload(&spec, &shape); // REF by default
    let single = push_through(builder.clone(), &trace);
    let one_shard = push_through(
        builder.clone().sharded(RuntimeConfig::with_shards(1)),
        &trace,
    );
    let four_shards = push_through(
        builder.clone().sharded(RuntimeConfig::with_shards(4)),
        &trace,
    );

    for (label, outcome) in [
        ("single-threaded", &single),
        ("1 shard", &one_shard),
        ("4 shards", &four_shards),
    ] {
        assert!(
            output::same_results(&legacy.results, &outcome.results),
            "{label} diverged from the legacy runtime: missing {}, extra {}",
            output::missing_from(&legacy.results, &outcome.results).len(),
            output::missing_from(&outcome.results, &legacy.results).len(),
        );
        assert!(
            output::is_temporally_ordered(&outcome.results),
            "{label} results out of timestamp order"
        );
        assert_eq!(outcome.order_violations, 0, "{label}");
        assert_eq!(outcome.results_count, legacy.results_count, "{label}");
    }

    // Steady-state metrics. The single-threaded backend and the one-shard
    // sharded backend run the identical executor over the identical
    // sequence, so every deterministic metric matches the legacy run
    // exactly (wall-clock is the one nondeterministic field).
    for (label, outcome) in [("single-threaded", &single), ("1 shard", &one_shard)] {
        assert_eq!(outcome.snapshot.stats, legacy.snapshot.stats, "{label}");
        assert_eq!(
            outcome.snapshot.steady_cost_units, legacy.snapshot.steady_cost_units,
            "{label}"
        );
        assert_eq!(
            outcome.snapshot.cost_units, legacy.snapshot.cost_units,
            "{label}"
        );
        assert_eq!(
            outcome.snapshot.steady_peak_memory_bytes, legacy.snapshot.steady_peak_memory_bytes,
            "{label}"
        );
    }
    // At 4 shards the partition-invariant counters still agree (per-probe
    // cost shrinks with per-shard state, so cost units legitimately drop).
    assert_eq!(
        four_shards.snapshot.stats.tuples_arrived,
        legacy.snapshot.stats.tuples_arrived
    );
    assert_eq!(
        four_shards.snapshot.stats.results_emitted,
        legacy.snapshot.stats.results_emitted
    );
    assert_eq!(four_shards.per_shard.len(), 4);
}

#[test]
fn jit_mode_agrees_across_backends_in_the_no_expiry_regime() {
    // Window longer than the stream: nothing expires, so JIT's result set
    // equals REF's exactly and per-shard suppression state cannot shift the
    // margin — both backends must agree to the tuple.
    let spec = shared_key_spec()
        .with_window_minutes(30.0)
        .with_duration(Duration::from_secs(90));
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);
    let builder = Engine::builder()
        .workload(&spec, &shape)
        .mode(ExecutionMode::Jit(JitPolicy::full()));
    let single = push_through(builder.clone(), &trace);
    let sharded = push_through(
        builder.clone().sharded(RuntimeConfig::with_shards(4)),
        &trace,
    );
    assert!(single.results_count > 0);
    assert!(output::same_results(&single.results, &sharded.results));
    assert!(!output::has_duplicates(&sharded.results));
    assert_eq!(single.mode_label, "JIT");
    assert_eq!(sharded.mode_label, "JIT");
}

#[test]
fn bounded_policy_jit_is_exact_across_backends_even_under_expiry() {
    // The no-expiry caveat of the previous test is a strict-policy
    // artefact: under `DisorderPolicy::Bounded` the watermark clock drives
    // expiry at the same logical instants on every backend, so sharded and
    // single-threaded JIT agree exactly *with* windows expiring mid-stream
    // — and stay exact per watermark while results stream out.
    let spec = shared_key_spec()
        .with_window_minutes(1.0)
        .with_duration(Duration::from_secs(150));
    let shape = PlanShape::bushy(4);
    let lateness = Duration::from_secs(3);
    let trace = WorkloadGenerator::generate(&spec);
    let events = DisorderSpec::new(0.05, lateness, 77).apply(&trace);

    let builder = Engine::builder()
        .workload(&spec, &shape)
        .mode(ExecutionMode::Jit(JitPolicy::full()))
        .disorder(DisorderPolicy::Bounded(lateness));
    let mut single = builder.clone().build().unwrap().session().unwrap();
    let mut sharded = builder
        .clone()
        .sharded(RuntimeConfig::with_shards(4))
        .build()
        .unwrap()
        .session()
        .unwrap();

    let mut single_seen: Vec<Tuple> = Vec::new();
    let mut sharded_seen: Vec<Tuple> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let _ = single.push_event(event.clone()).unwrap();
        let _ = sharded.push_event(event.clone()).unwrap();
        if i % 25 == 0 {
            single_seen.extend(single.poll_results());
            sharded_seen.extend(sharded.poll_results());
            // Exact per watermark: everything the sharded backend has
            // released, the single-threaded one has already released too.
            assert!(
                output::missing_from(&sharded_seen, &single_seen).is_empty(),
                "sharded JIT released a result single-threaded JIT has not (push {i})"
            );
        }
    }
    let single_out = single.finish().unwrap();
    let sharded_out = sharded.finish().unwrap();
    single_seen.extend(single_out.results);
    sharded_seen.extend(sharded_out.results);

    assert!(single_out.snapshot.late_arrivals > 0, "disorder must bite");
    assert!(
        single_out.snapshot.stats.purged_tuples > 0,
        "sanity: expiry is active (windows do not hold the whole stream)"
    );
    assert!(
        output::same_results(&single_seen, &sharded_seen),
        "bounded JIT diverged across backends: missing {}, extra {}",
        output::missing_from(&single_seen, &sharded_seen).len(),
        output::missing_from(&sharded_seen, &single_seen).len()
    );
    assert!(!output::has_duplicates(&sharded_seen));
    assert_eq!(single_out.results_count, sharded_out.results_count);
}

#[test]
fn non_partitionable_workload_on_sharded_backend_is_a_typed_build_error() {
    // No shared key: the clique predicates equate *different* columns of
    // each source pair, so no single hash column is safe.
    let spec = WorkloadSpec::bushy_default()
        .with_sources(4)
        .with_duration(Duration::from_secs(30));
    let result = Engine::builder()
        .workload(&spec, &PlanShape::bushy(4))
        .sharded(RuntimeConfig::with_shards(4))
        .build();
    match result {
        Err(EngineError::NotPartitionable { detail }) => {
            assert!(detail.contains("partition key"), "detail: {detail}");
        }
        other => panic!("expected NotPartitionable, got {other:?}"),
    }
    // The identical builder works single-threaded…
    assert!(Engine::builder()
        .workload(&spec, &PlanShape::bushy(4))
        .build()
        .is_ok());
    // …and at one shard, where nothing can be lost.
    assert!(Engine::builder()
        .workload(&spec, &PlanShape::bushy(4))
        .sharded(RuntimeConfig::with_shards(1))
        .build()
        .is_ok());
}

#[test]
fn cql_round_trip_parse_engine_results() {
    // Parse → engine → push hand-made tuples → results. A and B each carry
    // one column (x); the 60-second window separates the two join pairs.
    let engine = Engine::builder()
        .query_cql(
            "SELECT * FROM A [RANGE 60 seconds], B [RANGE 60 seconds] \
             WHERE A.x = B.x",
        )
        .mode(ExecutionMode::Jit(JitPolicy::full()))
        .build()
        .expect("CQL query builds");
    assert_eq!(engine.query().shape, PlanShape::left_deep(2));
    let mut session = engine.session().expect("session opens");

    let tuple = |source: u16, seq: u64, ts_s: u64, x: i64| {
        Arc::new(BaseTuple::new(
            SourceId(source),
            seq,
            Timestamp::from_secs(ts_s),
            vec![Value::int(x)],
        ))
    };
    let _ = session.push(SourceId(0), tuple(0, 0, 0, 7)).unwrap();
    let _ = session.push(SourceId(1), tuple(1, 0, 1, 7)).unwrap(); // joins a0
    let _ = session.push(SourceId(1), tuple(1, 1, 2, 9)).unwrap(); // no partner yet
    let early = session.poll_results();
    assert_eq!(early.len(), 1, "the x=7 pair is available immediately");
    let _ = session.push(SourceId(0), tuple(0, 1, 70, 9)).unwrap(); // b1 expired (68s > 60s)
    let _ = session.push(SourceId(1), tuple(1, 2, 75, 9)).unwrap(); // joins a1 (5s apart)
    let outcome = session.finish().expect("session finishes");
    assert_eq!(outcome.results_count, 2, "x=7 pair and the fresh x=9 pair");
    assert_eq!(outcome.results.len(), 1, "one result was already polled");
    assert_eq!(outcome.order_violations, 0);
}

#[test]
fn out_of_order_push_is_a_typed_error() {
    let engine = Engine::builder()
        .query_cql("SELECT * FROM A [RANGE 60 seconds], B [RANGE 60 seconds] WHERE A.x = B.x")
        .build()
        .unwrap();
    let mut session = engine.session().unwrap();
    let tuple = |ts_s: u64| {
        Arc::new(BaseTuple::new(
            SourceId(0),
            0,
            Timestamp::from_secs(ts_s),
            vec![Value::int(1)],
        ))
    };
    let _ = session.push(SourceId(0), tuple(10)).unwrap();
    let err = session.push(SourceId(0), tuple(5));
    assert!(matches!(err, Err(EngineError::OutOfOrder { .. })));
    // The session remains usable for in-order pushes.
    let _ = session.push(SourceId(0), tuple(10)).unwrap();
    session.finish().unwrap();
}

#[test]
fn polled_and_final_results_partition_the_stream() {
    // Polling mid-run must never duplicate or drop results relative to a
    // poll-free run, on either backend.
    let spec = shared_key_spec();
    let shape = PlanShape::bushy(4);
    let trace = WorkloadGenerator::generate(&spec);
    for builder in [
        Engine::builder().workload(&spec, &shape),
        Engine::builder()
            .workload(&spec, &shape)
            .sharded(RuntimeConfig::with_shards(3)),
    ] {
        let baseline = push_through(builder.clone(), &trace);
        let engine = builder.build().unwrap();
        let mut session = engine.session().unwrap();
        let mut streamed = Vec::new();
        for (i, event) in trace.iter().enumerate() {
            let _ = session.push_event(event.clone()).unwrap();
            if i % 50 == 0 {
                streamed.extend(session.poll_results());
            }
        }
        let outcome = session.finish().unwrap();
        streamed.extend(outcome.results.iter().cloned());
        assert_eq!(streamed.len() as u64, outcome.results_count);
        assert!(output::same_results(&baseline.results, &streamed));
        assert!(output::is_temporally_ordered(&streamed));
    }
}
