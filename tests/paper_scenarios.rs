//! Scenario tests taken directly from the paper's narrative: the Table I
//! arrival sequence, the Figure 5 five-way propagation example, the
//! Section V extensions, and the Table II plan catalogue.

use jit_dsms::core::jit_filter::JitSelectionOperator;
use jit_dsms::core::JitJoinOperator;
use jit_dsms::exec::operator::Operator;
use jit_dsms::exec::plan::{Input, PlanBuilder};
use jit_dsms::exec::RefJoinOperator;
use jit_dsms::plan::builder::{build_eddy_plan, build_mjoin_plan};
use jit_dsms::prelude::*;
use jit_dsms::types::{BaseTuple, FilterPredicate};
use std::sync::Arc;

fn base(source: u16, seq: u64, ts_s: u64, values: Vec<i64>) -> Arc<BaseTuple> {
    Arc::new(BaseTuple::new(
        SourceId(source),
        seq,
        Timestamp::from_secs(ts_s),
        values.into_iter().map(Value::int).collect(),
    ))
}

/// Predicates of Figure 1: A.x = B.x ∧ A.y = C.y.
fn figure1_predicates() -> PredicateSet {
    PredicateSet::from_predicates(vec![
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 0),
            ColumnRef::new(SourceId(1), 0),
        ),
        EquiPredicate::new(
            ColumnRef::new(SourceId(0), 1),
            ColumnRef::new(SourceId(2), 0),
        ),
    ])
}

fn figure1_plan(mode: ExecutionMode) -> Executor {
    let predicates = figure1_predicates();
    let window = Window::new(Duration::from_mins(5));
    let mut builder = PlanBuilder::new();
    let op1: Box<dyn Operator> = match mode.policy() {
        None => Box::new(RefJoinOperator::new(
            "A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            predicates.clone(),
            window,
        )),
        Some(policy) => Box::new(JitJoinOperator::new(
            "A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            predicates.clone(),
            window,
            policy,
        )),
    };
    let op1 = builder.add_operator(
        op1,
        vec![Input::Source(SourceId(0)), Input::Source(SourceId(1))],
    );
    let op2: Box<dyn Operator> = match mode.policy() {
        None => Box::new(RefJoinOperator::new(
            "AB⋈C",
            SourceSet::first_n(2),
            SourceSet::single(SourceId(2)),
            predicates.clone(),
            window,
        )),
        Some(policy) => Box::new(JitJoinOperator::new(
            "AB⋈C",
            SourceSet::first_n(2),
            SourceSet::single(SourceId(2)),
            predicates,
            window,
            policy,
        )),
    };
    builder.add_operator(op2, vec![Input::Operator(op1), Input::Source(SourceId(2))]);
    Executor::new(builder.build().unwrap(), ExecutorConfig::default())
}

/// The arrival sequence of Table I extended with the resuming tuple c1 from
/// Section III-A.
fn table1_arrivals() -> Vec<(u16, Arc<BaseTuple>)> {
    vec![
        // A non-matching C tuple so S_C is non-empty (the paper's narrative
        // detects the component MNS a1, not the degenerate Ø).
        (2, base(2, 99, 0, vec![999])),
        (1, base(1, 1, 0, vec![1])),
        (1, base(1, 2, 0, vec![1])),
        (1, base(1, 3, 0, vec![1])),
        (0, base(0, 1, 1, vec![1, 100])),
        (1, base(1, 4, 2, vec![1])),
        (0, base(0, 2, 3, vec![1, 100])),
        (2, base(2, 1, 4, vec![100])),
    ]
}

#[test]
fn table1_jit_produces_the_same_final_results_with_fewer_partials() {
    let mut ref_exec = figure1_plan(ExecutionMode::Ref);
    let mut jit_exec = figure1_plan(ExecutionMode::Jit(JitPolicy::full()));
    for (source, tuple) in table1_arrivals() {
        ref_exec.ingest(SourceId(source), tuple.clone());
        jit_exec.ingest(SourceId(source), tuple);
    }
    // Section III-A: when c1 arrives, 7 results a*b*c1 are reported (a1 and
    // a2 each join b1..b4, minus the pre-produced a1b1 which also joins) —
    // in total 2 × 4 = 8 results.
    assert_eq!(ref_exec.results_count(), 8);
    assert_eq!(jit_exec.results_count(), 8);
    assert!(output::same_results(ref_exec.results(), jit_exec.results()));
    let ref_partials = ref_exec.metrics().stats.intermediate_produced;
    let jit_partials = jit_exec.metrics().stats.intermediate_produced;
    // REF materialises a1b1..a1b4 and a2b1..a2b4 eagerly (8 partials);
    // JIT produces the first probe's batch eagerly and the rest just in time,
    // but never more than REF.
    assert_eq!(ref_partials, 8);
    assert!(jit_partials <= ref_partials);
    assert!(jit_exec.metrics().stats.feedback_suspend >= 1);
    assert!(jit_exec.metrics().stats.feedback_resume >= 1);
    assert!(jit_exec.metrics().stats.blacklisted_tuples >= 1);
}

#[test]
fn doe_on_table1_also_agrees() {
    let mut ref_exec = figure1_plan(ExecutionMode::Ref);
    let mut doe_exec = figure1_plan(ExecutionMode::Doe);
    for (source, tuple) in table1_arrivals() {
        ref_exec.ingest(SourceId(source), tuple.clone());
        doe_exec.ingest(SourceId(source), tuple);
    }
    assert!(output::same_results(ref_exec.results(), doe_exec.results()));
}

#[test]
fn all_table2_plans_run_under_every_mode() {
    // Small workload, every Table II shape, every mode: plans build, execute,
    // and agree with REF.
    let modes = [
        ExecutionMode::Ref,
        ExecutionMode::Doe,
        ExecutionMode::Jit(JitPolicy::full()),
    ];
    let shapes: Vec<PlanShape> = (3..=8)
        .map(PlanShape::bushy)
        .chain((3..=6).map(PlanShape::left_deep))
        .collect();
    for shape in shapes {
        let spec = WorkloadSpec::bushy_default()
            .with_sources(shape.num_sources)
            .with_window_minutes(30.0)
            .with_rate(0.8)
            .with_dmax(6)
            .with_duration(Duration::from_secs(90))
            .with_seed(13);
        let outcomes =
            QueryRuntime::compare(&spec, &shape, &modes, ExecutorConfig::default()).unwrap();
        let reference = &outcomes[0];
        for other in &outcomes[1..] {
            assert!(
                output::same_results(&reference.results, &other.results),
                "{} differs from REF on {}",
                other.mode_label,
                shape.label()
            );
        }
    }
}

#[test]
fn selection_consumer_suppresses_upstream_production() {
    // Figure 9a: Op1 = A⋈B (JIT), Op2 = σ A.x > 200.
    let predicates = PredicateSet::from_predicates(vec![EquiPredicate::new(
        ColumnRef::new(SourceId(0), 0),
        ColumnRef::new(SourceId(1), 0),
    )]);
    let window = Window::new(Duration::from_mins(5));
    let mut builder = PlanBuilder::new();
    let op1 = builder.add_operator(
        Box::new(JitJoinOperator::new(
            "A⋈B",
            SourceSet::single(SourceId(0)),
            SourceSet::single(SourceId(1)),
            predicates,
            window,
            JitPolicy::full(),
        )),
        vec![Input::Source(SourceId(0)), Input::Source(SourceId(1))],
    );
    builder.add_operator(
        Box::new(JitSelectionOperator::new(
            "σ A.x1>200",
            FilterPredicate::gt(ColumnRef::new(SourceId(0), 1), 200),
            SourceSet::first_n(2),
        )),
        vec![Input::Operator(op1)],
    );
    let mut exec = Executor::new(builder.build().unwrap(), ExecutorConfig::default());
    // a1 fails the filter (x1 = 100): after its first joined output reaches
    // the selection, Op1 is told to stop joining a1.
    exec.ingest(SourceId(1), base(1, 1, 0, vec![7]));
    exec.ingest(SourceId(0), base(0, 1, 1, vec![7, 100]));
    exec.ingest(SourceId(1), base(1, 2, 2, vec![7]));
    exec.ingest(SourceId(1), base(1, 3, 3, vec![7]));
    // a2 passes the filter and joins all three b tuples.
    exec.ingest(SourceId(0), base(0, 2, 4, vec![7, 300]));
    assert_eq!(exec.results_count(), 3);
    let stats = exec.metrics().stats;
    assert!(stats.feedback_suspend >= 1);
    // REF would have produced 1 + 3·1 + 3 = 7 partials; JIT suppresses the
    // later a1 joins.
    assert!(
        stats.intermediate_produced < 7,
        "got {}",
        stats.intermediate_produced
    );
}

#[test]
fn mjoin_and_eddy_plans_match_the_tree_plan_results() {
    let n = 3;
    let spec = WorkloadSpec::bushy_default()
        .with_sources(n)
        .with_window_minutes(30.0)
        .with_rate(1.0)
        .with_dmax(5)
        .with_duration(Duration::from_secs(60))
        .with_seed(3);
    let predicates = spec.predicates();
    let window = spec.window();
    let trace = WorkloadGenerator::generate(&spec);

    // Reference: left-deep tree.
    let tree = QueryRuntime::run_trace(
        &trace,
        &spec,
        &PlanShape::left_deep(n),
        ExecutionMode::Ref,
        ExecutorConfig::default(),
    )
    .unwrap();

    // M-Join: no stored intermediate results, same final results.
    let mut mjoin_exec = Executor::new(
        build_mjoin_plan(n, &predicates, window).unwrap(),
        ExecutorConfig {
            collect_results: true,
            check_temporal_order: false,
        },
    );
    for event in trace.iter() {
        mjoin_exec.ingest(event.source, event.tuple.clone());
    }
    assert!(output::same_results(&tree.results, mjoin_exec.results()));

    // Eddy: STeM routing, same final results.
    let mut eddy_exec = Executor::new(
        build_eddy_plan(
            n,
            &predicates,
            window,
            jit_dsms::exec::eddy::RoutingPolicy::SmallestStateFirst,
        )
        .unwrap(),
        ExecutorConfig {
            collect_results: true,
            check_temporal_order: false,
        },
    );
    for event in trace.iter() {
        eddy_exec.ingest(event.source, event.tuple.clone());
    }
    assert!(output::same_results(&tree.results, eddy_exec.results()));
}
