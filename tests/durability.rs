//! Durability: crash recovery from checkpoints and bounded disorder
//! tolerance.
//!
//! The headline contract is exactly-once recovery: push a prefix of a trace,
//! checkpoint to a file, drop the session ("crash"), restore from the file,
//! replay the tail from the replay cursor (`Session::pushed`), and the
//! concatenation of everything polled plus the final flush equals an
//! uninterrupted run's results byte for byte — on both backends, in both
//! REF and JIT mode, under both disorder policies.

use jit_dsms::prelude::*;
use std::path::PathBuf;

fn spec() -> WorkloadSpec {
    parallel_workload(3, 16)
        .with_rate(1.0)
        .with_window_minutes(2.0)
        .with_duration(Duration::from_secs(100))
        .with_seed(905)
}

/// A unique checkpoint path per test (the workspace has no tempfile dep).
fn ckpt_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("jit-dsms-test-{}-{tag}.ckpt", std::process::id()));
    path
}

/// Uninterrupted oracle: push everything, polling periodically.
fn run_straight(builder: &EngineBuilder, events: &[ArrivalEvent]) -> Vec<Tuple> {
    let engine = builder.clone().build().expect("engine builds");
    let mut session = engine.session().expect("session opens");
    let mut out = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let _ = session.push_event(event.clone()).expect("push");
        if i % 40 == 0 {
            out.extend(session.poll_results());
        }
    }
    let outcome = session.finish().expect("finish");
    out.extend(outcome.results);
    out
}

/// Crash-recovery run: push a prefix, checkpoint, drop the session, restore
/// from the file and replay the tail from the replay cursor.
fn run_with_crash(
    builder: &EngineBuilder,
    events: &[ArrivalEvent],
    cut: usize,
    tag: &str,
) -> Vec<Tuple> {
    let path = ckpt_path(tag);
    let engine = builder.clone().build().expect("engine builds");
    let mut session = engine.session().expect("session opens");
    let mut out = Vec::new();
    for (i, event) in events.iter().take(cut).enumerate() {
        let _ = session.push_event(event.clone()).expect("push");
        if i % 40 == 0 {
            out.extend(session.poll_results());
        }
    }
    session.checkpoint_to(&path).expect("checkpoint writes");
    drop(session); // crash: all in-memory state is gone

    let engine = builder.clone().build().expect("engine rebuilds");
    let mut session = engine.restore_file(&path).expect("restore");
    // The replay cursor counts every consumed arrival, dropped or not.
    assert_eq!(session.pushed() as usize, cut, "replay cursor survived");
    for event in events.iter().skip(cut) {
        let _ = session.push_event(event.clone()).expect("replayed push");
    }
    let outcome = session.finish().expect("finish");
    out.extend(outcome.results);
    std::fs::remove_file(&path).ok();
    out
}

#[test]
fn crash_recovery_is_exactly_once_on_every_backend_and_mode() {
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let events: Vec<ArrivalEvent> = trace.iter().cloned().collect();
    let cut = events.len() / 2;
    assert!(cut > 10, "workload too small to mean anything");

    for (mode_tag, mode) in [
        ("ref", ExecutionMode::Ref),
        ("jit", ExecutionMode::Jit(JitPolicy::full())),
    ] {
        for (backend_tag, builder) in [
            (
                "single",
                Engine::builder().workload(&spec, &shape).mode(mode),
            ),
            (
                "sharded",
                Engine::builder()
                    .workload(&spec, &shape)
                    .mode(mode)
                    .sharded(RuntimeConfig::with_shards(3)),
            ),
        ] {
            let straight = run_straight(&builder, &events);
            assert!(!straight.is_empty(), "{mode_tag}/{backend_tag}: no results");
            let recovered =
                run_with_crash(&builder, &events, cut, &format!("{mode_tag}-{backend_tag}"));
            assert_eq!(
                straight, recovered,
                "{mode_tag}/{backend_tag}: recovery diverged from the uninterrupted run"
            );
        }
    }
}

#[test]
fn crash_recovery_under_bounded_disorder_keeps_the_reorder_stage() {
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let lateness = Duration::from_secs(5);
    // Disorder the trace with delays under the bound: nothing is dropped,
    // but at any cut some arrivals sit buffered in the reorder stage.
    let events = DisorderSpec::new(0.1, lateness, 31).apply(&trace);
    let builder = Engine::builder()
        .workload(&spec, &shape)
        .disorder(DisorderPolicy::Bounded(lateness));
    let straight = run_straight(&builder, &events);
    assert!(!straight.is_empty());
    // Cut at an odd index to make a non-empty buffer at the cut likely.
    let recovered = run_with_crash(&builder, &events, events.len() / 2 + 3, "disorder");
    assert_eq!(straight, recovered);

    let sharded = builder.sharded(RuntimeConfig::with_shards(2));
    let straight = run_straight(&sharded, &events);
    let recovered = run_with_crash(&sharded, &events, events.len() / 2 + 3, "disorder-sharded");
    assert_eq!(straight, recovered);
}

#[test]
fn bounded_policy_tolerates_disorder_within_the_bound_exactly() {
    // In-order strict run vs disordered bounded run with lateness ≥ the
    // injected delay bound: the same result multiset, nothing dropped.
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let max_delay = Duration::from_secs(4);
    let disordered = DisorderSpec::new(0.08, max_delay, 17).apply(&trace);
    assert!(
        disordered.windows(2).any(|w| w[0].ts > w[1].ts),
        "the disordered trace must actually be out of order"
    );

    let in_order: Vec<ArrivalEvent> = trace.iter().cloned().collect();
    let strict = run_straight(&Engine::builder().workload(&spec, &shape), &in_order);

    let bounded = Engine::builder()
        .workload(&spec, &shape)
        .disorder(DisorderPolicy::Bounded(max_delay));
    let engine = bounded.build().unwrap();
    let mut session = engine.session().unwrap();
    for event in &disordered {
        let outcome = session.push_event(event.clone()).unwrap();
        assert!(outcome.is_accepted(), "no drop within the bound");
    }
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.snapshot.late_dropped, 0);
    assert!(outcome.snapshot.late_arrivals > 0);
    assert!(outcome.snapshot.reorder_buffer_peak > 0);
    assert!(
        output::same_results(&strict, &outcome.results),
        "bounded reordering changed the result set: missing {}, extra {}",
        output::missing_from(&strict, &outcome.results).len(),
        output::missing_from(&outcome.results, &strict).len()
    );
    assert!(output::is_temporally_ordered(&outcome.results));
}

#[test]
fn arrivals_beyond_the_bound_are_typed_drops_not_errors() {
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    // Delays up to 30 s against a 1 s lateness bound: the tail of the delay
    // distribution must be dropped, visibly and without erroring.
    let disordered = DisorderSpec::new(0.15, Duration::from_secs(30), 23).apply(&trace);
    let engine = Engine::builder()
        .workload(&spec, &shape)
        .disorder(DisorderPolicy::Bounded(Duration::from_secs(1)))
        .build()
        .unwrap();
    let mut session = engine.session().unwrap();
    let mut drops = 0u64;
    for event in &disordered {
        if session.push_event(event.clone()).unwrap() == PushOutcome::LateDrop {
            drops += 1;
        }
    }
    assert!(drops > 0, "the workload must exercise the drop path");
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.snapshot.late_dropped, drops);
    assert!(outcome.snapshot.late_arrivals >= drops);
    assert!(output::is_temporally_ordered(&outcome.results));
}

#[test]
fn corrupted_and_mismatched_checkpoint_files_are_typed_errors() {
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let builder = Engine::builder().workload(&spec, &shape);
    let engine = builder.clone().build().unwrap();

    // Not a checkpoint at all.
    let path = ckpt_path("garbage");
    std::fs::write(&path, "not a checkpoint").unwrap();
    assert!(matches!(
        engine.restore_file(&path),
        Err(EngineError::Checkpoint(CheckpointError::Corrupt(_)))
    ));

    // Right magic, unsupported version.
    std::fs::write(&path, "JITDSMS-CHECKPOINT v99\n{}").unwrap();
    match engine.restore_file(&path) {
        Err(EngineError::Checkpoint(CheckpointError::VersionMismatch { found, supported })) => {
            assert_eq!((found, supported), (99, 1));
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }

    // Valid header, truncated body.
    std::fs::write(&path, "JITDSMS-CHECKPOINT v1\n{\"pushed\": 3,").unwrap();
    assert!(matches!(
        engine.restore_file(&path),
        Err(EngineError::Checkpoint(CheckpointError::Corrupt(_)))
    ));

    // A checkpoint from a strict engine cannot restore into a bounded one.
    let trace = WorkloadGenerator::generate(&spec);
    let mut session = engine.session().unwrap();
    for event in trace.iter().take(20) {
        let _ = session.push_event(event.clone()).unwrap();
    }
    session.checkpoint_to(&path).unwrap();
    let bounded = builder
        .disorder(DisorderPolicy::Bounded(Duration::from_secs(1)))
        .build()
        .unwrap();
    assert!(matches!(
        bounded.restore_file(&path),
        Err(EngineError::Checkpoint(CheckpointError::Mismatch(_)))
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_cost_is_visible_in_metrics() {
    let spec = spec();
    let shape = PlanShape::bushy(3);
    let trace = WorkloadGenerator::generate(&spec);
    let engine = Engine::builder().workload(&spec, &shape).build().unwrap();
    let mut session = engine.session().unwrap();
    for event in trace.iter().take(50) {
        let _ = session.push_event(event.clone()).unwrap();
    }
    let path = ckpt_path("metrics");
    let stats = session.checkpoint_to(&path).unwrap();
    assert!(stats.bytes > 0);
    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.checkpoint_bytes, stats.bytes);
    assert!(snapshot.checkpoint_millis >= stats.millis);
    session.finish().unwrap();
    std::fs::remove_file(&path).ok();
}
